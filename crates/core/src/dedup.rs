//! Content-addressed dedup mode: chunk, encode once, reference forever.
//!
//! The paper's §3.2 prices every campaign per stored byte; ROADMAP
//! item 2's lever is to store each distinct byte run **once**. With
//! [`DedupConfig`] set on the archive, ingest runs above the unchanged
//! Codec→Plan→Executor seam:
//!
//! 1. The payload is cut into content-defined chunks
//!    ([`aeon_cas::Chunker`]) — reproducible, edit-local boundaries.
//! 2. Each chunk's SHA-256 is its identity. A bounded recency index
//!    ([`aeon_cas::BoundedIndex`]) is consulted first (the RAM-bounded
//!    fast path whose hit rate `exp_dedup` measures); the authoritative
//!    block map decides. Only *unseen* blocks are encoded — through the
//!    ordinary policy pipeline — and placed; seen blocks just gain a
//!    reference.
//! 3. The chunk hash list becomes a Merkle block tree whose interior
//!    nodes are themselves encoded blocks, so the object (and, via
//!    [`Archive::commit_catalog`], the whole catalog) is recoverable
//!    from one root hash.
//!
//! Retrieval walks the tree from the root, re-verifying every interior
//! node and every data block against its hash on the way down, then
//! checks the whole-payload digest — corruption anywhere under a shared
//! block surfaces as a typed failure in *every* referencing object.
//!
//! # Convergent per-block encoding
//!
//! A block's encode context is derived from its **content hash** —
//! `blk-<hex>` — never from the owning object or chunk position (a
//! positional `"{id}#chunk{j}"` derivation would give the same bytes a
//! different ciphertext per object and silently defeat dedup under
//! encryption). The encode DRBG is likewise derived from
//! `(archive seed, "block-encode", context)`, so identical plaintext
//! blocks produce identical shards: convergent encryption within one
//! archive. The standard trade-off applies and is deliberate — an
//! observer of the *stored* shards can tell two objects share content
//! (that is what dedup means) but learns nothing beyond the at-rest
//! guarantees of the policy.
//!
//! # Refcount lifecycle
//!
//! Every leaf occurrence and every interior-node membership of every
//! live object holds one reference on its block. Ingest commits new
//! blocks at refcount 0, and only after every fallible step (placement,
//! node writes, timestamp anchoring) has succeeded does one infallible
//! pass add the references — a failed ingest rolls back cleanly and
//! never strands a half-referenced object. Delete releases one
//! reference per occurrence; a block's shards leave the cluster when
//! its count reaches zero. Catalog snapshots pin their blocks by the
//! same rules.

use crate::archive::{Archive, ArchiveError, Manifest, ObjectId};
use crate::maintenance::ObjectReencode;
use crate::pipeline::{self, PipelineConfig};
use crate::plan::{self, ReadPlan, WritePlan};
use crate::policy::{EncodingMeta, PolicyError, PolicyKind};
use crate::repair::{RepairMethod, RepairReport};
use aeon_cas::{build_tree, merkle, BlockHash, Chunker, ChunkerParams, IndexStats};
use aeon_crypto::{ChaChaDrbg, Sha256};
use aeon_secretshare::proactive::ProtocolCost;
use aeon_store::clock::SimDuration;
use aeon_store::cluster::TransferReport;
use std::collections::BTreeSet;

/// Configuration of the archive's content-addressed dedup mode.
#[derive(Debug, Clone)]
pub struct DedupConfig {
    /// Content-defined chunking parameters (part of the dedup identity:
    /// changing them re-cuts future ingests).
    pub chunker: ChunkerParams,
    /// Capacity of the bounded in-memory recency index consulted before
    /// the authoritative block map.
    pub index_capacity: usize,
    /// Fanout of the Merkle block tree.
    pub fanout: usize,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            chunker: ChunkerParams::default(),
            index_capacity: 1 << 16,
            fanout: 64,
        }
    }
}

/// What a stored block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A content-defined chunk of some payload.
    Data,
    /// A serialized Merkle tree node.
    Tree,
}

/// Per-block bookkeeping: how the block is encoded and placed, and how
/// many references keep it alive.
#[derive(Debug, Clone)]
pub struct BlockRecord {
    /// Live references (leaf occurrences + tree-node memberships).
    pub refcount: u64,
    /// Plaintext length of the block.
    pub len: usize,
    /// Data chunk or tree node.
    pub kind: BlockKind,
    /// The policy the block's shards are encoded under.
    pub policy: PolicyKind,
    /// Encode-time metadata (never chunked: blocks *are* the chunks).
    pub meta: EncodingMeta,
    /// Node placement, one entry per shard.
    pub placement: Vec<aeon_store::node::NodeId>,
    /// SHA-256 of each stored shard blob.
    pub shard_digests: Vec<[u8; 32]>,
}

/// The dedup side of a [`Manifest`]: the object's Merkle root and its
/// leaf blocks in payload order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupManifest {
    /// Root of the object's Merkle block tree.
    pub root: BlockHash,
    /// Leaf (data) block hashes, in payload order, duplicates included.
    pub blocks: Vec<BlockHash>,
}

/// Aggregate dedup accounting from [`Archive::dedup_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct DedupStats {
    /// Payload bytes of live dedup-ingested objects.
    pub logical_bytes: u64,
    /// Distinct data blocks resident.
    pub unique_data_blocks: usize,
    /// Plaintext bytes of distinct data blocks (the dedup'd size).
    pub unique_data_bytes: u64,
    /// Distinct tree-node blocks resident.
    pub tree_blocks: usize,
    /// Plaintext bytes of tree-node blocks (the index overhead).
    pub tree_bytes: u64,
    /// `unique_data_bytes / logical_bytes` (0 when nothing is stored).
    pub dedup_ratio: f64,
    /// Hit/miss/eviction accounting of the bounded recency index.
    pub index: IndexStats,
}

/// One catalog row, as recovered from a catalog root hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The object's id (hex string).
    pub id: String,
    /// User-supplied name.
    pub name: String,
    /// Payload length in bytes.
    pub logical_len: u64,
    /// SHA-256 of the payload.
    pub digest: [u8; 32],
    /// Root of the object's Merkle block tree.
    pub root: BlockHash,
}

/// Magic prefix of a serialized catalog payload.
pub const CATALOG_MAGIC: [u8; 8] = *b"AEONCAT1";

/// The storage context (object-id string) of a block: derived from the
/// content hash alone, so identical blocks encode identically no matter
/// which object or position references them.
#[must_use]
pub fn block_object_id(hash: &BlockHash) -> String {
    format!("blk-{hash}")
}

/// Pipeline settings for encoding a single block: blocks are already
/// content-sized, so the policy pipeline must never re-chunk them
/// (`meta.chunked` stays `None` and segment frames never nest).
fn block_pipeline() -> PipelineConfig {
    PipelineConfig {
        chunk_size: usize::MAX,
        workers: 1,
    }
}

fn serialize_catalog<'a>(manifests: impl Iterator<Item = &'a Manifest>) -> Vec<u8> {
    let rows: Vec<&Manifest> = manifests.filter(|m| m.blocks.is_some()).collect();
    let mut out = Vec::new();
    out.extend_from_slice(&CATALOG_MAGIC);
    out.extend_from_slice(&(rows.len() as u32).to_be_bytes());
    for m in rows {
        let d = m.blocks.as_ref().expect("filtered to dedup manifests");
        let id = m.id.as_str().as_bytes();
        out.extend_from_slice(&(id.len() as u16).to_be_bytes());
        out.extend_from_slice(id);
        let name = m.name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_be_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(m.logical_len as u64).to_be_bytes());
        out.extend_from_slice(&m.digest);
        out.extend_from_slice(d.root.as_bytes());
    }
    out
}

fn malformed_catalog() -> ArchiveError {
    ArchiveError::Policy(PolicyError::Malformed("malformed catalog payload".into()))
}

fn parse_catalog(bytes: &[u8]) -> Result<Vec<CatalogEntry>, ArchiveError> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], ArchiveError> {
        let slice = bytes.get(pos..pos + n).ok_or_else(malformed_catalog)?;
        pos += n;
        Ok(slice)
    };
    if take(8)? != CATALOG_MAGIC {
        return Err(malformed_catalog());
    }
    let count = u32::from_be_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let id_len = u16::from_be_bytes(take(2)?.try_into().expect("2 bytes")) as usize;
        let id = String::from_utf8(take(id_len)?.to_vec()).map_err(|_| malformed_catalog())?;
        let name_len = u16::from_be_bytes(take(2)?.try_into().expect("2 bytes")) as usize;
        let name = String::from_utf8(take(name_len)?.to_vec()).map_err(|_| malformed_catalog())?;
        let logical_len = u64::from_be_bytes(take(8)?.try_into().expect("8 bytes"));
        let digest: [u8; 32] = take(32)?.try_into().expect("32 bytes");
        let root: [u8; 32] = take(32)?.try_into().expect("32 bytes");
        entries.push(CatalogEntry {
            id,
            name,
            logical_len,
            digest,
            root: BlockHash::from_bytes(root),
        });
    }
    if pos != bytes.len() {
        return Err(malformed_catalog());
    }
    Ok(entries)
}

impl Archive {
    fn tree_fanout(&self) -> usize {
        self.config.dedup.as_ref().map_or(64, |d| d.fanout).max(2)
    }

    /// Every block hash an object references — leaf occurrences plus
    /// the recomputed interior nodes — deduplicated, in first-seen
    /// order. The tree build is deterministic in `(leaves, fanout)`, so
    /// recomputing it is cheaper than persisting the node list.
    fn unique_refs(&self, d: &DedupManifest) -> Vec<BlockHash> {
        let tree = build_tree(&d.blocks, self.tree_fanout());
        let mut seen = BTreeSet::new();
        d.blocks
            .iter()
            .chain(tree.nodes.iter().map(|(h, _)| h))
            .filter(|h| seen.insert(**h))
            .copied()
            .collect()
    }

    /// Chunks `payload`, encodes every unseen block (data and tree) and
    /// commits its shards, but adds **no** references. Rolls its own
    /// commits back on any failure; on success returns the dedup
    /// manifest plus the blocks this call created (still at refcount 0)
    /// so the caller can roll back later fallible steps.
    fn dedup_store_payload(
        &mut self,
        payload: &[u8],
        policy: &PolicyKind,
    ) -> Result<(DedupManifest, Vec<BlockHash>), ArchiveError> {
        let dcfg = self.config.dedup.clone().expect("dedup configured");
        let chunker = Chunker::new(dcfg.chunker);
        let mut slices: Vec<&[u8]> = Vec::new();
        let mut prev = 0usize;
        for end in chunker.boundaries(payload) {
            slices.push(&payload[prev..end]);
            prev = end;
        }
        let hashes: Vec<BlockHash> = slices.iter().map(|s| BlockHash::of(s)).collect();

        // Recognition: the bounded index answers first (statistics),
        // the authoritative map decides (correctness).
        let mut fresh: Vec<usize> = Vec::new();
        let mut fresh_set: BTreeSet<BlockHash> = BTreeSet::new();
        for (j, h) in hashes.iter().enumerate() {
            let _resident = self.dedup_index.lookup(h);
            if !self.blocks.contains_key(h) && fresh_set.insert(*h) {
                fresh.push(j);
            }
            self.dedup_index.record(h);
        }

        // Encode unseen data blocks across the worker pool. Seeds are
        // derived per block hash *before* any worker runs, and contexts
        // carry no positional information, so the plans are independent
        // of worker count and scheduling.
        let block_cfg = block_pipeline();
        let seeds: Vec<[u8; 32]> = fresh
            .iter()
            .map(|&j| self.op_seed("block-encode", &block_object_id(&hashes[j])))
            .collect();
        let plans: Vec<Result<WritePlan, PolicyError>> = {
            let keys = &self.keys;
            pipeline::run_indexed(fresh.len(), self.config.pipeline.workers.max(1), |k| {
                let j = fresh[k];
                let ctx = block_object_id(&hashes[j]);
                let mut rng = ChaChaDrbg::from_seed(seeds[k]);
                plan::plan_write(
                    policy,
                    keys,
                    &mut rng,
                    &ObjectId::from_raw(ctx),
                    slices[j],
                    &block_cfg,
                )
            })
        };

        // Commit serially in first-appearance order: node I/O and clock
        // charges replay identically regardless of worker count.
        let mut created: Vec<BlockHash> = Vec::new();
        let mut fail: Option<ArchiveError> = None;
        for (k, outcome) in plans.into_iter().enumerate() {
            let j = fresh[k];
            let committed = outcome.map_err(ArchiveError::from).and_then(|write| {
                self.commit_block(&hashes[j], write, BlockKind::Data, slices[j].len())
            });
            match committed {
                Ok(()) => created.push(hashes[j]),
                Err(e) => {
                    fail = Some(e);
                    break;
                }
            }
        }

        // Interior nodes are blocks too; most are new, but shared
        // subtrees (identical objects) are recognized like any block.
        let tree = build_tree(&hashes, dcfg.fanout.max(2));
        if fail.is_none() {
            for (nh, bytes) in &tree.nodes {
                if self.blocks.contains_key(nh) {
                    continue;
                }
                let ctx = block_object_id(nh);
                let mut rng = self.op_rng("block-encode", &ctx);
                let committed = plan::plan_write(
                    policy,
                    &self.keys,
                    &mut rng,
                    &ObjectId::from_raw(ctx),
                    bytes,
                    &block_cfg,
                )
                .map_err(ArchiveError::from)
                .and_then(|write| self.commit_block(nh, write, BlockKind::Tree, bytes.len()));
                match committed {
                    Ok(()) => created.push(*nh),
                    Err(e) => {
                        fail = Some(e);
                        break;
                    }
                }
            }
        }

        if let Some(e) = fail {
            self.dedup_rollback(&created);
            return Err(e);
        }
        Ok((
            DedupManifest {
                root: tree.root,
                blocks: hashes,
            },
            created,
        ))
    }

    /// Removes blocks committed at refcount 0 by a failed store.
    fn dedup_rollback(&mut self, created: &[BlockHash]) {
        for h in created {
            if let Some(rec) = self.blocks.remove(h) {
                self.executor().delete(&block_object_id(h), &rec.placement);
                self.dedup_index.remove(h);
            }
        }
    }

    /// The infallible reference pass: one reference per leaf occurrence
    /// and one per interior-node membership.
    fn dedup_add_refs(&mut self, d: &DedupManifest) {
        let tree = build_tree(&d.blocks, self.tree_fanout());
        for h in &d.blocks {
            self.blocks.get_mut(h).expect("leaf committed").refcount += 1;
        }
        for (nh, _) in &tree.nodes {
            self.blocks.get_mut(nh).expect("node committed").refcount += 1;
        }
    }

    /// Dedup-mode ingest: called by [`Archive::ingest_with_policy`]
    /// when [`DedupConfig`] is set.
    pub(crate) fn ingest_dedup(
        &mut self,
        payload: &[u8],
        name: &str,
        policy: PolicyKind,
        id: ObjectId,
    ) -> Result<ObjectId, ArchiveError> {
        let (dedup, created) = self.dedup_store_payload(payload, &policy)?;
        // Anchoring is the last fallible step; it runs before any
        // reference moves so rollback stays trivial.
        if let Err(e) = self.anchor_integrity(&id, payload) {
            self.dedup_rollback(&created);
            return Err(e);
        }
        self.dedup_add_refs(&dedup);
        let manifest = Manifest {
            id: id.clone(),
            name: name.to_string(),
            policy,
            meta: EncodingMeta::plain(self.keys.current_version()),
            placement: Vec::new(),
            logical_len: payload.len(),
            digest: Sha256::digest(payload),
            shard_digests: Vec::new(),
            created_year: self.year(),
            refresh_epochs: 0,
            blocks: Some(dedup),
        };
        self.manifests.insert(id.clone(), manifest);
        Ok(id)
    }

    /// Places and writes one planned block, recording it at refcount 0.
    fn commit_block(
        &mut self,
        hash: &BlockHash,
        write: WritePlan,
        kind: BlockKind,
        len: usize,
    ) -> Result<(), ArchiveError> {
        let ctx = block_object_id(hash);
        let placement = self.executor().place(&ctx, write.shards.len())?;
        let mut put_rng = self.op_rng("block-ingest", &ctx);
        if let Err(outcome) = self
            .executor()
            .commit_write(&write, &placement, &mut put_rng)
        {
            return Err(ArchiveError::DegradedBeyondBudget {
                id: ObjectId::from_raw(ctx),
                available: outcome.written,
                required: write.required,
                corrupt: 0,
            });
        }
        self.blocks.insert(
            *hash,
            BlockRecord {
                refcount: 0,
                len,
                kind,
                policy: write.policy,
                meta: write.meta,
                placement,
                shard_digests: write.shard_digests,
            },
        );
        Ok(())
    }

    /// Digest-filtered, retrying fetch of one block's shards.
    fn fetch_block(&self, rec: &BlockRecord, ctx: &str) -> crate::executor::ShardsSnapshot {
        let plan = ReadPlan {
            object: ObjectId::from_raw(ctx.to_string()),
            placement: rec.placement.clone(),
            shard_digests: rec.shard_digests.clone(),
        };
        let mut rng = self.op_rng("block-read", ctx);
        self.executor().read(&plan, &mut rng)
    }

    /// Fetches, decodes, and hash-verifies one block. Failures are
    /// typed against `owner` — the object whose read is in progress —
    /// so corruption of a shared block surfaces in every referencing
    /// object.
    fn read_block(
        &self,
        hash: &BlockHash,
        owner: &ObjectId,
        report: &mut TransferReport,
    ) -> Result<Vec<u8>, ArchiveError> {
        let Some(rec) = self.blocks.get(hash) else {
            return Err(ArchiveError::Policy(PolicyError::Malformed(format!(
                "object {owner} references unknown block {hash}"
            ))));
        };
        let ctx = block_object_id(hash);
        let snap = self.fetch_block(rec, &ctx);
        report.attempts.extend(snap.report.attempts);
        let required = rec.policy.read_threshold();
        if snap.valid < required {
            if snap.corrupt > 0 {
                return Err(ArchiveError::IntegrityViolation(owner.clone()));
            }
            return Err(ArchiveError::DegradedBeyondBudget {
                id: owner.clone(),
                available: snap.valid,
                required,
                corrupt: snap.corrupt,
            });
        }
        let bytes = pipeline::decode_object(
            &rec.policy,
            &self.keys,
            &ctx,
            &snap.shards,
            &rec.meta,
            self.config.pipeline.workers,
        )?;
        if BlockHash::of(&bytes) != *hash {
            return Err(ArchiveError::IntegrityViolation(owner.clone()));
        }
        Ok(bytes)
    }

    /// Fetches, decodes, and hash-verifies many blocks in one
    /// cross-block fan-in: distinct hashes (first-occurrence order)
    /// each become a read plan, and the executor groups every plan's
    /// shard keys by source node into one framed batch request per
    /// node. A hash that repeats in `hashes` is fetched **once** and
    /// its bytes cloned per occurrence — the dedup-aware divergence
    /// from per-occurrence sequential reads (and attempt accounting
    /// covers each distinct block once). Per-block rng derivation
    /// matches [`Self::read_block`], so fault-free results are
    /// identical to the sequential walk.
    fn read_block_many(
        &self,
        hashes: &[BlockHash],
        owner: &ObjectId,
        report: &mut TransferReport,
    ) -> Result<Vec<Vec<u8>>, ArchiveError> {
        let mut distinct: Vec<BlockHash> = Vec::new();
        for h in hashes {
            if !distinct.contains(h) {
                distinct.push(*h);
            }
        }
        let mut plans = Vec::with_capacity(distinct.len());
        let mut rngs = Vec::with_capacity(distinct.len());
        let mut recs = Vec::with_capacity(distinct.len());
        for hash in &distinct {
            let Some(rec) = self.blocks.get(hash) else {
                return Err(ArchiveError::Policy(PolicyError::Malformed(format!(
                    "object {owner} references unknown block {hash}"
                ))));
            };
            let ctx = block_object_id(hash);
            plans.push(ReadPlan {
                object: ObjectId::from_raw(ctx.clone()),
                placement: rec.placement.clone(),
                shard_digests: rec.shard_digests.clone(),
            });
            rngs.push(self.op_rng("block-read", &ctx));
            recs.push((rec, ctx));
        }
        let snaps = self.executor().read_many(&plans, &mut rngs);
        let mut decoded: Vec<Vec<u8>> = Vec::with_capacity(distinct.len());
        for ((hash, (rec, ctx)), snap) in distinct.iter().zip(&recs).zip(snaps) {
            report.attempts.extend(snap.report.attempts);
            let required = rec.policy.read_threshold();
            if snap.valid < required {
                if snap.corrupt > 0 {
                    return Err(ArchiveError::IntegrityViolation(owner.clone()));
                }
                return Err(ArchiveError::DegradedBeyondBudget {
                    id: owner.clone(),
                    available: snap.valid,
                    required,
                    corrupt: snap.corrupt,
                });
            }
            let bytes = pipeline::decode_object(
                &rec.policy,
                &self.keys,
                ctx,
                &snap.shards,
                &rec.meta,
                self.config.pipeline.workers,
            )?;
            if BlockHash::of(&bytes) != *hash {
                return Err(ArchiveError::IntegrityViolation(owner.clone()));
            }
            decoded.push(bytes);
        }
        Ok(hashes
            .iter()
            .map(|h| {
                let at = distinct.iter().position(|d| d == h).expect("hash listed");
                decoded[at].clone()
            })
            .collect())
    }

    /// [`Self::walk_tree`] level by level: every interior node of one
    /// tree level is fetched in a single cross-block batch before
    /// descending. Trees are uniform (all leaves at level 0), so the
    /// breadth-first frontier keeps leaf hashes in payload order
    /// exactly like the depth-first walk.
    fn walk_tree_batched(
        &self,
        root: &BlockHash,
        owner: &ObjectId,
        report: &mut TransferReport,
    ) -> Result<Vec<BlockHash>, ArchiveError> {
        let mut leaves = Vec::new();
        // (hash, expected level); None = root, any interior level.
        let mut frontier: Vec<(BlockHash, Option<u8>)> = vec![(*root, None)];
        while !frontier.is_empty() {
            let interior: Vec<BlockHash> = frontier
                .iter()
                .filter(|(_, expect)| *expect != Some(0))
                .map(|(h, _)| *h)
                .collect();
            let fetched = self.read_block_many(&interior, owner, report)?;
            let mut blocks = fetched.into_iter();
            let mut next = Vec::new();
            for (hash, expect) in frontier {
                if expect == Some(0) {
                    leaves.push(hash);
                    continue;
                }
                let bytes = blocks.next().expect("one fetch per interior node");
                let node = merkle::decode_node(&bytes)
                    .map_err(|_| ArchiveError::IntegrityViolation(owner.clone()))?;
                if let Some(level) = expect {
                    if node.level != level {
                        return Err(ArchiveError::IntegrityViolation(owner.clone()));
                    }
                }
                for child in &node.children {
                    next.push((*child, Some(node.level - 1)));
                }
            }
            frontier = next;
        }
        Ok(leaves)
    }

    /// Walks the Merkle tree from `root`, verifying every interior node
    /// on the way down, and returns the leaf hashes in payload order.
    fn walk_tree(
        &self,
        root: &BlockHash,
        owner: &ObjectId,
        report: &mut TransferReport,
    ) -> Result<Vec<BlockHash>, ArchiveError> {
        let mut leaves = Vec::new();
        // (hash, expected level); None = root, any interior level.
        let mut stack: Vec<(BlockHash, Option<u8>)> = vec![(*root, None)];
        while let Some((hash, expect)) = stack.pop() {
            if expect == Some(0) {
                leaves.push(hash);
                continue;
            }
            let bytes = self.read_block(&hash, owner, report)?;
            let node = merkle::decode_node(&bytes)
                .map_err(|_| ArchiveError::IntegrityViolation(owner.clone()))?;
            if let Some(level) = expect {
                if node.level != level {
                    return Err(ArchiveError::IntegrityViolation(owner.clone()));
                }
            }
            for child in node.children.iter().rev() {
                stack.push((*child, Some(node.level - 1)));
            }
        }
        Ok(leaves)
    }

    /// Dedup-mode retrieval: tree walk, per-block decode + hash check,
    /// then the whole-payload digest check.
    pub(crate) fn retrieve_dedup(
        &self,
        manifest: &Manifest,
    ) -> Result<(Vec<u8>, TransferReport), ArchiveError> {
        let d = manifest.blocks.as_ref().expect("dedup manifest");
        let mut report = TransferReport::default();
        let leaves = self.walk_tree(&d.root, &manifest.id, &mut report)?;
        if leaves != d.blocks {
            return Err(ArchiveError::IntegrityViolation(manifest.id.clone()));
        }
        let mut payload = Vec::with_capacity(manifest.logical_len);
        for h in &leaves {
            payload.extend_from_slice(&self.read_block(h, &manifest.id, &mut report)?);
        }
        if Sha256::digest(&payload) != manifest.digest {
            return Err(ArchiveError::IntegrityViolation(manifest.id.clone()));
        }
        Ok((payload, report))
    }

    /// Dedup-mode retrieval over the batched read seam: the tree walk
    /// fetches each level in one cross-block batch, and the leaf pass
    /// fetches every **distinct** leaf block once (one framed request
    /// per node) before reassembling the payload per occurrence.
    /// Fault-free results are identical to [`Self::retrieve_dedup`];
    /// attempt accounting covers each distinct block once instead of
    /// once per occurrence.
    pub(crate) fn retrieve_dedup_batched(
        &self,
        manifest: &Manifest,
    ) -> Result<(Vec<u8>, TransferReport), ArchiveError> {
        let d = manifest.blocks.as_ref().expect("dedup manifest");
        let mut report = TransferReport::default();
        let leaves = self.walk_tree_batched(&d.root, &manifest.id, &mut report)?;
        if leaves != d.blocks {
            return Err(ArchiveError::IntegrityViolation(manifest.id.clone()));
        }
        let blocks = self.read_block_many(&leaves, &manifest.id, &mut report)?;
        let mut payload = Vec::with_capacity(manifest.logical_len);
        for bytes in &blocks {
            payload.extend_from_slice(bytes);
        }
        if Sha256::digest(&payload) != manifest.digest {
            return Err(ArchiveError::IntegrityViolation(manifest.id.clone()));
        }
        Ok((payload, report))
    }

    /// Reassembles and verifies a payload from a Merkle root alone — no
    /// manifest required. Every interior node and data block is checked
    /// against its hash on the way, which is what makes the payload
    /// trustworthy without a recorded digest.
    ///
    /// # Errors
    ///
    /// Typed like a retrieval, against a synthetic `root-<hex>` id.
    pub fn read_object_by_root(&self, root: &BlockHash) -> Result<Vec<u8>, ArchiveError> {
        let owner = ObjectId::from_raw(format!("root-{root}"));
        let mut report = TransferReport::default();
        let leaves = self.walk_tree(root, &owner, &mut report)?;
        let mut payload = Vec::new();
        for h in &leaves {
            payload.extend_from_slice(&self.read_block(h, &owner, &mut report)?);
        }
        Ok(payload)
    }

    /// Serializes the catalog (id, name, length, digest, root of every
    /// dedup object), stores it through the same chunk/tree machinery,
    /// and returns its root hash — the single value from which
    /// [`Archive::catalog_entries`] and then every object can be
    /// recovered. Each committed catalog pins its blocks like any other
    /// object, so snapshots stay readable until superseded.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnsupportedOperation`] when dedup mode
    /// is off, and storage errors otherwise.
    pub fn commit_catalog(&mut self) -> Result<BlockHash, ArchiveError> {
        if self.config.dedup.is_none() {
            return Err(ArchiveError::UnsupportedOperation(
                "catalog commit requires dedup mode",
            ));
        }
        let rows = self.manifests.snapshot();
        let bytes = serialize_catalog(rows.iter());
        let policy = self.config.policy.clone();
        let (dedup, _created) = self.dedup_store_payload(&bytes, &policy)?;
        self.dedup_add_refs(&dedup);
        Ok(dedup.root)
    }

    /// Recovers the catalog rows from a catalog root hash alone.
    ///
    /// # Errors
    ///
    /// Retrieval errors, plus [`PolicyError::Malformed`] when the
    /// recovered payload does not parse as a catalog.
    pub fn catalog_entries(&self, root: &BlockHash) -> Result<Vec<CatalogEntry>, ArchiveError> {
        parse_catalog(&self.read_object_by_root(root)?)
    }

    /// Releases every reference a dedup manifest holds; blocks whose
    /// count reaches zero leave the cluster.
    pub(crate) fn release_dedup_refs(&mut self, manifest: &Manifest) {
        let d = manifest.blocks.as_ref().expect("dedup manifest");
        let tree = build_tree(&d.blocks, self.tree_fanout());
        for h in d.blocks.clone() {
            self.release_block(&h);
        }
        for (nh, _) in tree.nodes {
            self.release_block(&nh);
        }
    }

    fn release_block(&mut self, hash: &BlockHash) {
        let Some(rec) = self.blocks.get_mut(hash) else {
            return;
        };
        rec.refcount = rec.refcount.saturating_sub(1);
        if rec.refcount == 0 {
            let rec = self.blocks.remove(hash).expect("record present");
            self.executor()
                .delete(&block_object_id(hash), &rec.placement);
            self.dedup_index.remove(hash);
        }
    }

    /// Health probe for a dedup object: the minimum valid-shard count
    /// across every referenced block, against the largest read
    /// threshold among them.
    pub(crate) fn dedup_health(&self, manifest: &Manifest) -> (usize, usize) {
        let d = manifest.blocks.as_ref().expect("dedup manifest");
        let mut available = usize::MAX;
        let mut required = 0usize;
        for h in self.unique_refs(d) {
            let Some(rec) = self.blocks.get(&h) else {
                available = 0;
                continue;
            };
            let snap = self.fetch_block(rec, &block_object_id(&h));
            available = available.min(snap.valid);
            required = required.max(rec.policy.read_threshold());
        }
        if available == usize::MAX {
            available = 0;
        }
        (available, required)
    }

    /// Repairs every block a dedup object references. Because blocks
    /// are shared, healing them here heals **every** object that
    /// references them — one repair, fleet-wide effect.
    pub(crate) fn repair_dedup(
        &mut self,
        manifest: &Manifest,
    ) -> Result<RepairReport, ArchiveError> {
        let d = manifest.blocks.as_ref().expect("dedup manifest").clone();
        let mut total = RepairReport {
            missing_before: 0,
            missing_after: 0,
            method: RepairMethod::NotNeeded,
            bytes_read: 0,
            bytes_written: 0,
            elapsed: SimDuration::ZERO,
        };
        for h in self.unique_refs(&d) {
            let report = self.repair_block(&h)?;
            total.missing_before += report.missing_before;
            total.missing_after += report.missing_after;
            total.bytes_read += report.bytes_read;
            total.bytes_written += report.bytes_written;
            total.elapsed += report.elapsed;
            if report.method != RepairMethod::NotNeeded {
                total.method = report.method;
            }
        }
        Ok(total)
    }

    /// A block is self-verifying — its payload digest *is* its address
    /// — so the pure repair planner runs against a synthetic manifest.
    fn synthetic_block_manifest(&self, hash: &BlockHash, rec: &BlockRecord) -> Manifest {
        let ctx = block_object_id(hash);
        Manifest {
            id: ObjectId::from_raw(ctx.clone()),
            name: ctx,
            policy: rec.policy.clone(),
            meta: rec.meta.clone(),
            placement: rec.placement.clone(),
            logical_len: rec.len,
            digest: *hash.as_bytes(),
            shard_digests: rec.shard_digests.clone(),
            created_year: self.year(),
            refresh_epochs: 0,
            blocks: None,
        }
    }

    /// Repairs one block's missing or rotted shards from survivors
    /// (partial repair where the codec supports it, a full re-encode
    /// otherwise).
    fn repair_block(&mut self, hash: &BlockHash) -> Result<RepairReport, ArchiveError> {
        let Some(rec) = self.blocks.get(hash).cloned() else {
            return Err(ArchiveError::Policy(PolicyError::Malformed(format!(
                "repair references unknown block {hash}"
            ))));
        };
        let ctx = block_object_id(hash);
        let clock = self.cluster().clock().clone();
        let start = clock.now();
        let synthetic = self.synthetic_block_manifest(hash, &rec);
        let mut rng = self.op_rng("block-repair", &ctx);
        let snap = self
            .executor()
            .read(&ReadPlan::for_manifest(&synthetic), &mut rng);
        let mut bytes_read: u64 = snap.shards.iter().flatten().map(|s| s.len() as u64).sum();
        let mut bytes_written = 0u64;
        let missing: Vec<usize> = (0..snap.shards.len())
            .filter(|&i| snap.shards[i].is_none())
            .collect();
        if missing.is_empty() {
            return Ok(RepairReport {
                missing_before: 0,
                missing_after: 0,
                method: RepairMethod::NotNeeded,
                bytes_read,
                bytes_written: 0,
                elapsed: clock.now() - start,
            });
        }
        let method = match plan::plan_repair(&synthetic, &snap.shards, &missing)? {
            plan::RepairOutcome::Apply(repair) => {
                bytes_written += repair
                    .writes
                    .iter()
                    .map(|(_, data)| data.len() as u64)
                    .sum::<u64>();
                let mut put_rng = self.op_rng("block-repair-put", &ctx);
                let digests = self.executor().apply_repair(
                    &ctx,
                    &rec.placement,
                    &repair.writes,
                    &mut put_rng,
                )?;
                let entry = self.blocks.get_mut(hash).expect("record present");
                for (m, digest) in digests {
                    if m < entry.shard_digests.len() {
                        entry.shard_digests[m] = digest;
                    }
                }
                repair.method
            }
            plan::RepairOutcome::Reencode => {
                let policy = rec.policy.clone();
                let o = self.reencode_block(hash, policy)?;
                bytes_read += o.bytes_read;
                bytes_written += o.bytes_written;
                RepairMethod::FullReencode
            }
        };
        let rec = self.blocks.get(hash).expect("record present").clone();
        let synthetic = self.synthetic_block_manifest(hash, &rec);
        let mut rng = self.op_rng("block-repair-after", &ctx);
        let snap = self
            .executor()
            .read(&ReadPlan::for_manifest(&synthetic), &mut rng);
        bytes_read += snap
            .shards
            .iter()
            .flatten()
            .map(|s| s.len() as u64)
            .sum::<u64>();
        Ok(RepairReport {
            missing_before: missing.len(),
            missing_after: snap.shards.len() - snap.valid,
            method,
            bytes_read,
            bytes_written,
            elapsed: clock.now() - start,
        })
    }

    /// Re-encodes one block under `new_policy` — the unit of a dedup
    /// campaign. A block shared by many objects migrates **once**,
    /// which is exactly the §3.2 saving `exp_dedup` measures.
    fn reencode_block(
        &mut self,
        hash: &BlockHash,
        new_policy: PolicyKind,
    ) -> Result<ObjectReencode, ArchiveError> {
        new_policy.validate()?;
        let clock = self.cluster().clock().clone();
        let read_start = clock.now();
        let Some(rec) = self.blocks.get(hash).cloned() else {
            return Err(ArchiveError::Policy(PolicyError::Malformed(format!(
                "re-encode references unknown block {hash}"
            ))));
        };
        let ctx = block_object_id(hash);
        let owner = ObjectId::from_raw(ctx.clone());
        let snap = self.fetch_block(&rec, &ctx);
        let required = rec.policy.read_threshold();
        if snap.valid < required {
            if snap.corrupt > 0 {
                return Err(ArchiveError::IntegrityViolation(owner));
            }
            return Err(ArchiveError::DegradedBeyondBudget {
                id: owner,
                available: snap.valid,
                required,
                corrupt: snap.corrupt,
            });
        }
        let bytes = pipeline::decode_object(
            &rec.policy,
            &self.keys,
            &ctx,
            &snap.shards,
            &rec.meta,
            self.config.pipeline.workers,
        )?;
        if BlockHash::of(&bytes) != *hash {
            return Err(ArchiveError::IntegrityViolation(owner));
        }
        let bytes_read: u64 = snap.shards.iter().flatten().map(|s| s.len() as u64).sum();
        let write_start = clock.now();
        // Same convergent derivation as ingest: the new shards are a
        // pure function of (archive key, policy, block hash), so a
        // block re-encoded via object A matches one re-encoded via B.
        let mut enc_rng = self.op_rng("block-encode", &ctx);
        let write = plan::plan_write(
            &new_policy,
            &self.keys,
            &mut enc_rng,
            &owner,
            &bytes,
            &block_pipeline(),
        )?;
        let bytes_written: u64 = write.shards.iter().map(|s| s.len() as u64).sum();
        let placement = self.executor().place(&ctx, write.shards.len())?;
        self.executor().delete(&ctx, &rec.placement);
        let mut put_rng = self.op_rng("block-reencode-put", &ctx);
        let outcome = self
            .executor()
            .write_shards(&ctx, &placement, &write.shards, &mut put_rng);
        let entry = self.blocks.get_mut(hash).expect("record present");
        entry.policy = write.policy;
        entry.meta = write.meta;
        entry.placement = placement;
        entry.shard_digests = write.shard_digests;
        if outcome.written < write.required {
            return Err(ArchiveError::DegradedBeyondBudget {
                id: owner,
                available: outcome.written,
                required: write.required,
                corrupt: 0,
            });
        }
        Ok(ObjectReencode {
            bytes_read,
            bytes_written,
            read_time: write_start - read_start,
            write_time: clock.now() - write_start,
        })
    }

    /// Dedup branch of [`Archive::reencode_object_timed`]: migrates
    /// every referenced block not already on `new_policy`. Blocks an
    /// earlier object's campaign step already moved are skipped — the
    /// measured dedup saving.
    pub(crate) fn reencode_dedup_object(
        &mut self,
        id: &ObjectId,
        new_policy: PolicyKind,
    ) -> Result<ObjectReencode, ArchiveError> {
        new_policy.validate()?;
        let manifest = self
            .manifests
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?;
        let d = manifest.blocks.as_ref().expect("dedup manifest").clone();
        let mut total = ObjectReencode {
            bytes_read: 0,
            bytes_written: 0,
            read_time: SimDuration::ZERO,
            write_time: SimDuration::ZERO,
        };
        for h in self.unique_refs(&d) {
            let Some(rec) = self.blocks.get(&h) else {
                continue;
            };
            if rec.policy == new_policy {
                continue;
            }
            let o = self.reencode_block(&h, new_policy.clone())?;
            total.bytes_read += o.bytes_read;
            total.bytes_written += o.bytes_written;
            total.read_time += o.read_time;
            total.write_time += o.write_time;
        }
        self.manifests
            .update(id, |entry| entry.policy = new_policy)
            .expect("manifest exists");
        Ok(total)
    }

    /// Dedup branch of [`Archive::refresh_object`]: runs one Herzberg
    /// epoch on every referenced Shamir-encoded block. A block shared
    /// by several objects is re-randomized once per referencing
    /// object's refresh call; extra epochs are harmless (each is an
    /// independent zero-sharing).
    pub(crate) fn refresh_dedup_object(
        &mut self,
        id: &ObjectId,
        manifest: &Manifest,
    ) -> Result<ProtocolCost, ArchiveError> {
        let d = manifest.blocks.as_ref().expect("dedup manifest").clone();
        let mut total = ProtocolCost {
            messages: 0,
            bytes: 0,
        };
        for h in self.unique_refs(&d) {
            let Some(rec) = self.blocks.get(&h).cloned() else {
                continue;
            };
            let PolicyKind::Shamir { threshold, .. } = rec.policy else {
                continue;
            };
            let ctx = block_object_id(&h);
            let synthetic = self.synthetic_block_manifest(&h, &rec);
            let mut rng = self.op_rng("block-refresh", &ctx);
            let snap = self
                .executor()
                .read(&ReadPlan::for_manifest(&synthetic), &mut rng);
            let mut stored: Vec<Vec<u8>> = Vec::with_capacity(snap.shards.len());
            for s in &snap.shards {
                let Some(bytes) = s else {
                    return Err(ArchiveError::UnsupportedOperation(
                        "refresh requires all shareholders online",
                    ));
                };
                stored.push(bytes.clone());
            }
            let (blobs, cost) = plan::plan_refresh(threshold, &rec.meta, &mut self.rng, stored)?;
            let digests: Vec<[u8; 32]> =
                blobs.iter().map(|b| Sha256::digest(b.as_slice())).collect();
            let mut put_rng = self.op_rng("block-refresh-put", &ctx);
            let outcome = self
                .executor()
                .write_shards(&ctx, &rec.placement, &blobs, &mut put_rng);
            let entry = self.blocks.get_mut(&h).expect("record present");
            entry.shard_digests = digests;
            total.messages += cost.messages;
            total.bytes += cost.bytes;
            if outcome.written < threshold {
                return Err(ArchiveError::DegradedBeyondBudget {
                    id: id.clone(),
                    available: outcome.written,
                    required: threshold,
                    corrupt: 0,
                });
            }
        }
        self.manifests
            .update(id, |entry| entry.refresh_epochs += 1)
            .expect("manifest exists");
        Ok(total)
    }

    /// A block's record, for inspection and fault injection in tests.
    #[must_use]
    pub fn block_record(&self, hash: &BlockHash) -> Option<&BlockRecord> {
        self.blocks.get(hash)
    }

    /// Iterates over every resident block.
    pub fn blocks(&self) -> impl Iterator<Item = (&BlockHash, &BlockRecord)> {
        self.blocks.iter()
    }

    /// Aggregate dedup accounting; `None` when dedup mode is off.
    #[must_use]
    pub fn dedup_stats(&self) -> Option<DedupStats> {
        self.config.dedup.as_ref()?;
        let logical: u64 = self
            .manifests
            .snapshot()
            .iter()
            .filter(|m| m.blocks.is_some())
            .map(|m| m.logical_len as u64)
            .sum();
        let mut stats = DedupStats {
            logical_bytes: logical,
            unique_data_blocks: 0,
            unique_data_bytes: 0,
            tree_blocks: 0,
            tree_bytes: 0,
            dedup_ratio: 0.0,
            index: self.dedup_index.stats(),
        };
        for rec in self.blocks.values() {
            match rec.kind {
                BlockKind::Data => {
                    stats.unique_data_blocks += 1;
                    stats.unique_data_bytes += rec.len as u64;
                }
                BlockKind::Tree => {
                    stats.tree_blocks += 1;
                    stats.tree_bytes += rec.len as u64;
                }
            }
        }
        if logical > 0 {
            stats.dedup_ratio = stats.unique_data_bytes as f64 / logical as f64;
        }
        Some(stats)
    }
}

//! The plan executor: the one place node I/O happens.
//!
//! Every shard that moves between the archive and its cluster moves
//! through [`PlanExecutor`]. The executor owns no policy knowledge —
//! plans arrive with their bytes already decided — and the plan layer
//! owns no cluster handle, so the codebase has exactly one seam where
//! retries, digest filtering, rollback, and read accounting live.
//! Invariant: no other module in this crate calls `Cluster` or
//! `StorageNode` get/put directly.

use crate::archive::ArchiveError;
use crate::plan::{ReadPlan, WritePlan};
use crate::policy::PolicyError;
use aeon_crypto::{CryptoRng, Sha256};
use aeon_store::cluster::{ClusterError, TransferReport};
use aeon_store::node::{NodeId, ShardKey};
use aeon_store::retry::{run_with_retry, RetryPolicy};
use aeon_store::Cluster;

/// Snapshot of an object's shards after a retrying, digest-checked
/// fetch: the raw material for degraded reads, verification, and
/// repair.
#[derive(Debug)]
pub struct ShardsSnapshot {
    /// Shard slots in placement order. Slots that erred out past the
    /// retry budget, or whose bytes failed the per-shard digest check,
    /// are `None`.
    pub shards: Vec<Option<Vec<u8>>>,
    /// Shards present and digest-clean.
    pub valid: usize,
    /// Shards discarded because their bytes failed the digest check.
    pub corrupt: usize,
    /// Per-shard read-attempt accounting from the cluster.
    pub report: TransferReport,
}

/// What a shard-set write achieved.
#[derive(Debug)]
pub struct WriteOutcome {
    /// Shards that landed durably within the retry budget.
    pub written: usize,
    /// Per-shard write-attempt accounting from the cluster (the same
    /// [`TransferReport`] shape reads use — both directions are
    /// per-shard fan-outs with bounded retry).
    pub report: TransferReport,
}

/// Applies plans against a cluster under a bounded retry policy.
///
/// Borrowed fresh from the archive for each operation; carries no
/// state of its own beyond the cluster handle and the retry budget.
#[derive(Debug)]
pub struct PlanExecutor<'a> {
    cluster: &'a Cluster,
    retry: &'a RetryPolicy,
}

impl<'a> PlanExecutor<'a> {
    /// Creates an executor over `cluster` with the given retry budget.
    pub fn new(cluster: &'a Cluster, retry: &'a RetryPolicy) -> Self {
        PlanExecutor { cluster, retry }
    }

    /// Chooses node placement for `shards` shards of an object
    /// (deterministic in the object id; no node I/O).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] when the cluster has too few nodes.
    pub fn place(&self, object: &str, shards: usize) -> Result<Vec<NodeId>, ClusterError> {
        self.cluster.place(object, shards)
    }

    /// Executes a read plan: fetches every shard with bounded retry,
    /// then discards any whose bytes fail the plan's digest check.
    pub fn read<R: CryptoRng + ?Sized>(&self, plan: &ReadPlan, rng: &mut R) -> ShardsSnapshot {
        let (shards, report) = self.cluster.get_shards_retrying(
            plan.object.as_str(),
            &plan.placement,
            self.retry,
            rng,
        );
        digest_filter(plan, shards, report)
    }

    /// [`Self::read`] with the first attempt coalesced: shard fetches
    /// are grouped by source node and each group ships as one framed
    /// batch request (one seek on media-priced nodes); keys that fail
    /// retryably spend the remaining retry budget individually. Per-key
    /// attempt schedules — and therefore returned bytes,
    /// digest-filtered slots, and typed failures under deterministic
    /// fault injection — match the sequential path exactly; only
    /// backoff timing differs.
    pub fn read_batched<R: CryptoRng + ?Sized>(
        &self,
        plan: &ReadPlan,
        rng: &mut R,
    ) -> ShardsSnapshot {
        let (shards, report) = self.cluster.get_shards_batched_retrying(
            plan.object.as_str(),
            &plan.placement,
            self.retry,
            rng,
        );
        digest_filter(plan, shards, report)
    }

    /// Executes many read plans in one cross-object fan-in: every
    /// shard's first attempt is grouped by source node and shipped as
    /// one framed batch request per node (one seek per node per flush
    /// on media-priced clusters, however many objects the flush spans);
    /// keys that fail retryably then spend the remaining retry budget
    /// individually, drawing jitter from that object's own rng. Digest
    /// filtering stays per plan, so each returned [`ShardsSnapshot`] is
    /// exactly what [`Self::read`] would have produced for that plan
    /// under deterministic fault injection.
    ///
    /// # Panics
    ///
    /// Panics if `plans` and `rngs` disagree in length.
    pub fn read_many<R: CryptoRng>(
        &self,
        plans: &[ReadPlan],
        rngs: &mut [R],
    ) -> Vec<ShardsSnapshot> {
        assert_eq!(plans.len(), rngs.len(), "plan/rng mismatch");
        // Global key list: (plan index, shard index) in submission
        // order, grouped by source node in first-occurrence order.
        let mut groups: Vec<(NodeId, Vec<(usize, usize)>)> = Vec::new();
        for (p, plan) in plans.iter().enumerate() {
            for (s, node_id) in plan.placement.iter().enumerate() {
                match groups.iter_mut().find(|(id, _)| id == node_id) {
                    Some((_, v)) => v.push((p, s)),
                    None => groups.push((*node_id, vec![(p, s)])),
                }
            }
        }
        // First attempt: one coalesced frame per node across objects,
        // all frames dispatched at once (overlapped on per-node lanes
        // under parallel dispatch, in first-occurrence order under
        // sequential).
        type SlotResult = Option<Result<Vec<u8>, aeon_store::node::NodeError>>;
        let mut first: Vec<Vec<SlotResult>> = plans
            .iter()
            .map(|plan| (0..plan.placement.len()).map(|_| None).collect())
            .collect();
        let lane_nodes: Vec<NodeId> = groups.iter().map(|(id, _)| *id).collect();
        let frames = self.cluster.dispatch_lanes(&lane_nodes, |g| {
            let (node_id, slots) = &groups[g];
            let node = self.cluster.node(*node_id)?;
            let keys: Vec<ShardKey> = slots
                .iter()
                .map(|&(p, s)| ShardKey::new(plans[p].object.as_str(), s as u32))
                .collect();
            Some(node.get_batch(&keys))
        });
        for ((_, slots), frame) in groups.iter().zip(frames) {
            match frame {
                Some(results) => {
                    for (&(p, s), result) in slots.iter().zip(results) {
                        first[p][s] = Some(result);
                    }
                }
                None => {
                    for &(p, s) in slots {
                        first[p][s] = Some(Err(aeon_store::node::NodeError::Io(
                            "placement references unknown node".into(),
                        )));
                    }
                }
            }
        }
        // Resolve per plan: individual retries, then digest filtering.
        plans
            .iter()
            .zip(rngs)
            .enumerate()
            .map(|(p, (plan, rng))| {
                let mut shards: Vec<Option<Vec<u8>>> = Vec::with_capacity(plan.placement.len());
                let mut attempts = Vec::with_capacity(plan.placement.len());
                for (s, node_id) in plan.placement.iter().enumerate() {
                    let outcome = first[p][s].take().expect("first attempt recorded");
                    let known = self.cluster.node(*node_id).is_some();
                    let (slot, tries, error) = match outcome {
                        Ok(bytes) => (Some(bytes), 1, None),
                        Err(e) if !known => (None, 0, Some(e)),
                        Err(e) if RetryPolicy::is_retryable(&e) && self.retry.max_attempts > 1 => {
                            let rest = self
                                .retry
                                .clone()
                                .with_attempts(self.retry.max_attempts - 1);
                            let node = self.cluster.node(*node_id).expect("node exists").clone();
                            let key = ShardKey::new(plan.object.as_str(), s as u32);
                            let (res, stats) =
                                run_with_retry(&rest, self.cluster.clock(), rng, || node.get(&key));
                            match res {
                                Ok(bytes) => (Some(bytes), 1 + stats.attempts, None),
                                Err(e) => (None, 1 + stats.attempts, Some(e)),
                            }
                        }
                        Err(e) => (None, 1, Some(e)),
                    };
                    shards.push(slot);
                    attempts.push(aeon_store::cluster::ShardAttempt {
                        shard: s as u32,
                        node: *node_id,
                        attempts: tries,
                        error,
                    });
                }
                digest_filter(plan, shards, TransferReport { attempts })
            })
            .collect()
    }

    /// Writes a shard set in place (refresh, re-encode, re-wrap):
    /// shards that miss the retry budget are left stale for the
    /// caller's digests to filter on read. No rollback.
    pub fn write_shards<R: CryptoRng + ?Sized>(
        &self,
        object: &str,
        placement: &[NodeId],
        shards: &[Vec<u8>],
        rng: &mut R,
    ) -> WriteOutcome {
        let (written, report) = self
            .cluster
            .put_shards_retrying(object, placement, shards, self.retry, rng);
        WriteOutcome { written, report }
    }

    /// Executes a write plan for a fresh object (ingest): if fewer than
    /// the plan's required shards land durably the object could never
    /// be read back, so everything written is rolled back.
    ///
    /// # Errors
    ///
    /// Returns the outcome as `Err` when the write was rolled back.
    pub fn commit_write<R: CryptoRng + ?Sized>(
        &self,
        plan: &WritePlan,
        placement: &[NodeId],
        rng: &mut R,
    ) -> Result<WriteOutcome, WriteOutcome> {
        let outcome = self.write_shards(plan.object.as_str(), placement, &plan.shards, rng);
        if outcome.written < plan.required {
            self.cluster.delete_shards(plan.object.as_str(), placement);
            return Err(outcome);
        }
        Ok(outcome)
    }

    /// [`Self::commit_write`] with the first attempt coalesced: shards
    /// are grouped by target node and each group ships as one framed
    /// batch (one seek on media-priced nodes); failed entries spend the
    /// remaining retry budget individually. Per-key attempt schedules —
    /// and therefore stored bytes and typed failures under
    /// deterministic fault injection — match the sequential path
    /// exactly; only backoff timing differs.
    ///
    /// # Errors
    ///
    /// Returns the outcome as `Err` when the write was rolled back.
    pub fn commit_write_batched<R: CryptoRng + ?Sized>(
        &self,
        plan: &WritePlan,
        placement: &[NodeId],
        rng: &mut R,
    ) -> Result<WriteOutcome, WriteOutcome> {
        let (written, report) = self.cluster.put_shards_batched_retrying(
            plan.object.as_str(),
            placement,
            &plan.shards,
            self.retry,
            rng,
        );
        let outcome = WriteOutcome { written, report };
        if outcome.written < plan.required {
            self.cluster.delete_shards(plan.object.as_str(), placement);
            return Err(outcome);
        }
        Ok(outcome)
    }

    /// Executes a repair plan's writes: puts each rebuilt shard back at
    /// its slot, in order, under one retry rng. Returns the digest of
    /// each rewritten shard for the caller's manifest.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::Cluster`] when a put misses the retry
    /// budget — repair must not silently leave a hole it claimed to
    /// fill.
    pub fn apply_repair<R: CryptoRng + ?Sized>(
        &self,
        object: &str,
        placement: &[NodeId],
        writes: &[(usize, Vec<u8>)],
        rng: &mut R,
    ) -> Result<Vec<(usize, [u8; 32])>, ArchiveError> {
        let mut digests = Vec::with_capacity(writes.len());
        for (m, data) in writes {
            let node = self
                .cluster
                .node(placement[*m])
                .cloned()
                .ok_or(ArchiveError::Policy(PolicyError::Malformed(
                    "placement references unknown node".into(),
                )))?;
            let key = ShardKey::new(object, *m as u32);
            let (res, _stats) = run_with_retry(self.retry, self.cluster.clock(), rng, || {
                node.put(&key, data)
            });
            res.map_err(|e| ArchiveError::Cluster(ClusterError::Node(e)))?;
            digests.push((*m, Sha256::digest(data)));
        }
        Ok(digests)
    }

    /// Commits many write plans in one cross-object flush: every
    /// shard's first attempt is grouped by target node and shipped as
    /// one framed batch per node (one seek per node per flush on
    /// media-priced clusters, however many objects the flush spans);
    /// entries that fail retryably then spend the remaining retry
    /// budget individually, drawing jitter from that object's own rng.
    /// Rollback stays per object: a plan that lands fewer than its
    /// required shards is deleted and reported as `Err`, exactly like
    /// [`Self::commit_write`]. Per-key attempt schedules match the
    /// sequential path, so stored bytes and typed failures are
    /// identical under deterministic fault injection.
    ///
    /// # Panics
    ///
    /// Panics if `plans`, `placements`, and `rngs` disagree in length
    /// or a placement disagrees with its plan's shard count.
    pub fn commit_many<R: CryptoRng>(
        &self,
        plans: &[WritePlan],
        placements: &[Vec<NodeId>],
        rngs: &mut [R],
    ) -> Vec<Result<WriteOutcome, WriteOutcome>> {
        assert_eq!(plans.len(), placements.len(), "plan/placement mismatch");
        assert_eq!(plans.len(), rngs.len(), "plan/rng mismatch");
        // Global entry list: (plan index, shard index) in submission
        // order, grouped by target node in first-occurrence order.
        let mut groups: Vec<(NodeId, Vec<(usize, usize)>)> = Vec::new();
        for (p, (plan, placement)) in plans.iter().zip(placements).enumerate() {
            assert_eq!(
                placement.len(),
                plan.shards.len(),
                "placement/shard mismatch"
            );
            for (s, node_id) in placement.iter().enumerate() {
                match groups.iter_mut().find(|(id, _)| id == node_id) {
                    Some((_, v)) => v.push((p, s)),
                    None => groups.push((*node_id, vec![(p, s)])),
                }
            }
        }
        // First attempt: one coalesced frame per node across objects,
        // all frames dispatched at once (overlapped on per-node lanes
        // under parallel dispatch, in first-occurrence order under
        // sequential).
        let mut first: Vec<Vec<Option<Result<(), aeon_store::node::NodeError>>>> = plans
            .iter()
            .map(|plan| (0..plan.shards.len()).map(|_| None).collect())
            .collect();
        let lane_nodes: Vec<NodeId> = groups.iter().map(|(id, _)| *id).collect();
        let frames = self.cluster.dispatch_lanes(&lane_nodes, |g| {
            let (node_id, slots) = &groups[g];
            let node = self.cluster.node(*node_id)?;
            let entries: Vec<(ShardKey, &[u8])> = slots
                .iter()
                .map(|&(p, s)| {
                    (
                        ShardKey::new(plans[p].object.as_str(), s as u32),
                        plans[p].shards[s].as_slice(),
                    )
                })
                .collect();
            Some(node.put_batch(&entries))
        });
        for ((_, slots), frame) in groups.iter().zip(frames) {
            match frame {
                Some(results) => {
                    for (&(p, s), result) in slots.iter().zip(results) {
                        first[p][s] = Some(result);
                    }
                }
                None => {
                    for &(p, s) in slots {
                        first[p][s] = Some(Err(aeon_store::node::NodeError::Io(
                            "placement references unknown node".into(),
                        )));
                    }
                }
            }
        }
        // Resolve per object: individual retries, then the per-object
        // rollback decision.
        plans
            .iter()
            .zip(placements)
            .zip(rngs)
            .enumerate()
            .map(|(p, ((plan, placement), rng))| {
                let mut written = 0usize;
                let mut attempts = Vec::with_capacity(placement.len());
                for (s, node_id) in placement.iter().enumerate() {
                    let outcome = first[p][s].take().expect("first attempt recorded");
                    let known = self.cluster.node(*node_id).is_some();
                    let (tries, error) = match outcome {
                        Ok(()) => (1, None),
                        Err(e) if !known => (0, Some(e)),
                        Err(e) if RetryPolicy::is_retryable(&e) && self.retry.max_attempts > 1 => {
                            let rest = self
                                .retry
                                .clone()
                                .with_attempts(self.retry.max_attempts - 1);
                            let node = self.cluster.node(*node_id).expect("node exists").clone();
                            let key = ShardKey::new(plan.object.as_str(), s as u32);
                            let (res, stats) =
                                run_with_retry(&rest, self.cluster.clock(), rng, || {
                                    node.put(&key, &plan.shards[s])
                                });
                            (1 + stats.attempts, res.err())
                        }
                        Err(e) => (1, Some(e)),
                    };
                    if error.is_none() {
                        written += 1;
                    }
                    attempts.push(aeon_store::cluster::ShardAttempt {
                        shard: s as u32,
                        node: *node_id,
                        attempts: tries,
                        error,
                    });
                }
                let outcome = WriteOutcome {
                    written,
                    report: TransferReport { attempts },
                };
                if outcome.written < plan.required {
                    self.cluster.delete_shards(plan.object.as_str(), placement);
                    Err(outcome)
                } else {
                    Ok(outcome)
                }
            })
            .collect()
    }

    /// [`Self::apply_repair`] with the first attempt coalesced per
    /// node: every rebuilt shard's first attempt ships in one framed
    /// batch to its node, then entries are resolved **in write order**
    /// — a first-attempt failure spends the remaining retry budget
    /// individually, and the first entry that stays failed aborts the
    /// repair exactly as the sequential loop would. Writes the frame
    /// landed *beyond* the aborting entry are rolled back (deleted), so
    /// under transient fault injection the surviving stored bytes are
    /// identical to sequential execution. (Under *corrupting* faults a
    /// rolled-back slot ends empty where sequential would have left the
    /// old corrupt bytes; transient-fault equivalence is what the
    /// property suite pins.)
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::Cluster`] when a put misses the retry
    /// budget, like the sequential path.
    pub fn apply_repair_batched<R: CryptoRng + ?Sized>(
        &self,
        object: &str,
        placement: &[NodeId],
        writes: &[(usize, Vec<u8>)],
        rng: &mut R,
    ) -> Result<Vec<(usize, [u8; 32])>, ArchiveError> {
        // Group write positions by target node, first-occurrence order.
        let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for (pos, (m, _)) in writes.iter().enumerate() {
            let node_id =
                *placement
                    .get(*m)
                    .ok_or(ArchiveError::Policy(PolicyError::Malformed(
                        "repair write beyond placement".into(),
                    )))?;
            match groups.iter_mut().find(|(id, _)| *id == node_id) {
                Some((_, v)) => v.push(pos),
                None => groups.push((node_id, vec![pos])),
            }
        }
        // Every target node must exist before any frame ships: the
        // fan-out may overlap frames under parallel dispatch, so an
        // unknown node is detected up front (side-effect free) rather
        // than mid-flush.
        for (node_id, _) in &groups {
            self.cluster
                .node(*node_id)
                .ok_or(ArchiveError::Policy(PolicyError::Malformed(
                    "placement references unknown node".into(),
                )))?;
        }
        // First attempt: one coalesced frame per node, all frames
        // dispatched at once (overlapped on per-node lanes under
        // parallel dispatch, in first-occurrence order under
        // sequential).
        let mut first: Vec<Option<Result<(), aeon_store::node::NodeError>>> =
            (0..writes.len()).map(|_| None).collect();
        let lane_nodes: Vec<NodeId> = groups.iter().map(|(id, _)| *id).collect();
        let frames = self.cluster.dispatch_lanes(&lane_nodes, |g| {
            let (node_id, positions) = &groups[g];
            let node = self.cluster.node(*node_id).expect("pre-checked above");
            let entries: Vec<(ShardKey, &[u8])> = positions
                .iter()
                .map(|&p| {
                    let (m, data) = &writes[p];
                    (ShardKey::new(object, *m as u32), data.as_slice())
                })
                .collect();
            node.put_batch(&entries)
        });
        for ((_, positions), results) in groups.iter().zip(frames) {
            for (&p, result) in positions.iter().zip(results) {
                first[p] = Some(result);
            }
        }
        // Resolve in write order; abort (with rollback of later frame
        // writes) at the first entry that exhausts its budget.
        let mut digests = Vec::with_capacity(writes.len());
        for (p, (m, data)) in writes.iter().enumerate() {
            let outcome = first[p].take().expect("first attempt recorded");
            let resolved = match outcome {
                Ok(()) => Ok(()),
                Err(e) if RetryPolicy::is_retryable(&e) && self.retry.max_attempts > 1 => {
                    let rest = self
                        .retry
                        .clone()
                        .with_attempts(self.retry.max_attempts - 1);
                    let node = self.cluster.node(placement[*m]).expect("node exists");
                    let key = ShardKey::new(object, *m as u32);
                    run_with_retry(&rest, self.cluster.clock(), rng, || node.put(&key, data)).0
                }
                Err(e) => Err(e),
            };
            if let Err(e) = resolved {
                // Sequential execution never touched entries after this
                // one: undo what the coalesced frame already landed.
                // Deletes retry far past the normal budget — a rollback
                // that sticks is what keeps the batched failure state
                // byte-identical to the sequential one.
                let rollback = RetryPolicy::default()
                    .with_attempts(16)
                    .with_budget_ms(u64::MAX);
                for (q, (mq, _)) in writes.iter().enumerate().skip(p + 1) {
                    if matches!(first[q], Some(Ok(()))) {
                        if let Some(node) = self.cluster.node(placement[*mq]) {
                            let key = ShardKey::new(object, *mq as u32);
                            let _ = run_with_retry(&rollback, self.cluster.clock(), rng, || {
                                node.delete(&key)
                            });
                        }
                    }
                }
                return Err(ArchiveError::Cluster(ClusterError::Node(e)));
            }
            digests.push((*m, Sha256::digest(data.as_slice())));
        }
        Ok(digests)
    }

    /// Deletes an object's shards (best-effort).
    pub fn delete(&self, object: &str, placement: &[NodeId]) {
        self.cluster.delete_shards(object, placement);
    }

    /// Total bytes stored across the cluster.
    pub fn total_stored_bytes(&self) -> u64 {
        self.cluster.total_stored_bytes()
    }
}

/// Discards fetched shards whose bytes fail the plan's digest check
/// and folds the result into a [`ShardsSnapshot`]. Shared by every
/// read flavor so sequential and batched fetches filter identically.
fn digest_filter(
    plan: &ReadPlan,
    mut shards: Vec<Option<Vec<u8>>>,
    report: TransferReport,
) -> ShardsSnapshot {
    let mut corrupt = 0usize;
    for (slot, expected) in shards.iter_mut().zip(&plan.shard_digests) {
        if let Some(bytes) = slot {
            if Sha256::digest(bytes.as_slice()) != *expected {
                corrupt += 1;
                *slot = None;
            }
        }
    }
    let valid = shards.iter().flatten().count();
    ShardsSnapshot {
        shards,
        valid,
        corrupt,
        report,
    }
}

//! The plan executor: the one place node I/O happens.
//!
//! Every shard that moves between the archive and its cluster moves
//! through [`PlanExecutor`]. The executor owns no policy knowledge —
//! plans arrive with their bytes already decided — and the plan layer
//! owns no cluster handle, so the codebase has exactly one seam where
//! retries, digest filtering, rollback, and read accounting live.
//! Invariant: no other module in this crate calls `Cluster` or
//! `StorageNode` get/put directly.

use crate::archive::ArchiveError;
use crate::plan::{ReadPlan, WritePlan};
use crate::policy::PolicyError;
use aeon_crypto::{CryptoRng, Sha256};
use aeon_store::cluster::{ClusterError, ReadReport};
use aeon_store::node::{NodeId, ShardKey};
use aeon_store::retry::{run_with_retry, RetryPolicy};
use aeon_store::Cluster;

/// Snapshot of an object's shards after a retrying, digest-checked
/// fetch: the raw material for degraded reads, verification, and
/// repair.
#[derive(Debug)]
pub struct ShardsSnapshot {
    /// Shard slots in placement order. Slots that erred out past the
    /// retry budget, or whose bytes failed the per-shard digest check,
    /// are `None`.
    pub shards: Vec<Option<Vec<u8>>>,
    /// Shards present and digest-clean.
    pub valid: usize,
    /// Shards discarded because their bytes failed the digest check.
    pub corrupt: usize,
    /// Per-shard retry accounting from the cluster.
    pub report: ReadReport,
}

/// What a shard-set write achieved.
#[derive(Debug)]
pub struct WriteOutcome {
    /// Shards that landed durably within the retry budget.
    pub written: usize,
    /// Per-shard retry accounting from the cluster.
    pub report: ReadReport,
}

/// Applies plans against a cluster under a bounded retry policy.
///
/// Borrowed fresh from the archive for each operation; carries no
/// state of its own beyond the cluster handle and the retry budget.
#[derive(Debug)]
pub struct PlanExecutor<'a> {
    cluster: &'a Cluster,
    retry: &'a RetryPolicy,
}

impl<'a> PlanExecutor<'a> {
    /// Creates an executor over `cluster` with the given retry budget.
    pub fn new(cluster: &'a Cluster, retry: &'a RetryPolicy) -> Self {
        PlanExecutor { cluster, retry }
    }

    /// Chooses node placement for `shards` shards of an object
    /// (deterministic in the object id; no node I/O).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] when the cluster has too few nodes.
    pub fn place(&self, object: &str, shards: usize) -> Result<Vec<NodeId>, ClusterError> {
        self.cluster.place(object, shards)
    }

    /// Executes a read plan: fetches every shard with bounded retry,
    /// then discards any whose bytes fail the plan's digest check.
    pub fn read<R: CryptoRng + ?Sized>(&self, plan: &ReadPlan, rng: &mut R) -> ShardsSnapshot {
        let (mut shards, report) = self.cluster.get_shards_retrying(
            plan.object.as_str(),
            &plan.placement,
            self.retry,
            rng,
        );
        let mut corrupt = 0usize;
        for (slot, expected) in shards.iter_mut().zip(&plan.shard_digests) {
            if let Some(bytes) = slot {
                if Sha256::digest(bytes.as_slice()) != *expected {
                    corrupt += 1;
                    *slot = None;
                }
            }
        }
        let valid = shards.iter().flatten().count();
        ShardsSnapshot {
            shards,
            valid,
            corrupt,
            report,
        }
    }

    /// Writes a shard set in place (refresh, re-encode, re-wrap):
    /// shards that miss the retry budget are left stale for the
    /// caller's digests to filter on read. No rollback.
    pub fn write_shards<R: CryptoRng + ?Sized>(
        &self,
        object: &str,
        placement: &[NodeId],
        shards: &[Vec<u8>],
        rng: &mut R,
    ) -> WriteOutcome {
        let (written, report) = self
            .cluster
            .put_shards_retrying(object, placement, shards, self.retry, rng);
        WriteOutcome { written, report }
    }

    /// Executes a write plan for a fresh object (ingest): if fewer than
    /// the plan's required shards land durably the object could never
    /// be read back, so everything written is rolled back.
    ///
    /// # Errors
    ///
    /// Returns the outcome as `Err` when the write was rolled back.
    pub fn commit_write<R: CryptoRng + ?Sized>(
        &self,
        plan: &WritePlan,
        placement: &[NodeId],
        rng: &mut R,
    ) -> Result<WriteOutcome, WriteOutcome> {
        let outcome = self.write_shards(plan.object.as_str(), placement, &plan.shards, rng);
        if outcome.written < plan.required {
            self.cluster.delete_shards(plan.object.as_str(), placement);
            return Err(outcome);
        }
        Ok(outcome)
    }

    /// Executes a repair plan's writes: puts each rebuilt shard back at
    /// its slot, in order, under one retry rng. Returns the digest of
    /// each rewritten shard for the caller's manifest.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::Cluster`] when a put misses the retry
    /// budget — repair must not silently leave a hole it claimed to
    /// fill.
    pub fn apply_repair<R: CryptoRng + ?Sized>(
        &self,
        object: &str,
        placement: &[NodeId],
        writes: &[(usize, Vec<u8>)],
        rng: &mut R,
    ) -> Result<Vec<(usize, [u8; 32])>, ArchiveError> {
        let mut digests = Vec::with_capacity(writes.len());
        for (m, data) in writes {
            let node = self
                .cluster
                .node(placement[*m])
                .cloned()
                .ok_or(ArchiveError::Policy(PolicyError::Malformed(
                    "placement references unknown node".into(),
                )))?;
            let key = ShardKey::new(object, *m as u32);
            let (res, _stats) = run_with_retry(self.retry, self.cluster.clock(), rng, || {
                node.put(&key, data)
            });
            res.map_err(|e| ArchiveError::Cluster(ClusterError::Node(e)))?;
            digests.push((*m, Sha256::digest(data)));
        }
        Ok(digests)
    }

    /// Deletes an object's shards (best-effort).
    pub fn delete(&self, object: &str, placement: &[NodeId]) {
        self.cluster.delete_shards(object, placement);
    }

    /// Total bytes stored across the cluster.
    pub fn total_stored_bytes(&self) -> u64 {
        self.cluster.total_stored_bytes()
    }
}

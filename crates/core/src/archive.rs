//! The archive: policy-driven ingest, retrieval, verification,
//! maintenance.

use crate::catalog::{FleetCatalog, DEFAULT_CATALOG_SHARDS};
use crate::codec::RepairError;
use crate::dedup::{BlockRecord, DedupConfig, DedupManifest};
use crate::executor::{PlanExecutor, ShardsSnapshot};
use crate::keys::KeyStore;
use crate::pipeline::{self, PipelineConfig};
use crate::plan::{self, ReadPlan};
use crate::policy::{EncodingMeta, PolicyError, PolicyKind};
use aeon_cas::{BlockHash, BoundedIndex};
use aeon_crypto::{ChaChaDrbg, Sha256};
use aeon_integrity::ledger::Ledger;
use aeon_integrity::timestamp::{AnchorMode, DocumentChain, SigBreakSchedule, TimestampAuthority};
use aeon_num::pedersen::Committer;
use aeon_num::ModpGroup;
use aeon_store::cluster::{ClusterError, TransferReport};
use aeon_store::node::NodeId;
use aeon_store::retry::RetryPolicy;
use aeon_store::{Cluster, DispatchPolicy};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies an archived object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(String);

impl ObjectId {
    /// The identifier as a string (hex digest).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Wraps a raw identifier string. Block and root contexts in dedup
    /// mode are ids in their own right (`blk-<hex>`, `root-<hex>`).
    pub(crate) fn from_raw(raw: String) -> Self {
        ObjectId(raw)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// How ingests are anchored for long-term integrity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityMode {
    /// No timestamping (digest check only).
    DigestOnly,
    /// Hash-anchored renewable timestamp chain.
    HashChain,
    /// Pedersen-anchored (information-theoretically hiding) chain —
    /// the LINCOS construction.
    PedersenChain,
}

/// Archive configuration.
#[derive(Debug, Clone)]
pub struct ArchiveConfig {
    /// Default encoding policy for ingested objects.
    pub policy: PolicyKind,
    /// Site names for the simulated cluster.
    pub sites: Vec<String>,
    /// Nodes per site.
    pub nodes_per_site: usize,
    /// Simulated calendar year at creation.
    pub year: u32,
    /// Master key (version 0).
    pub master_key: [u8; 32],
    /// Seed for the archive's deterministic RNG.
    pub rng_seed: u64,
    /// Integrity anchoring mode.
    pub integrity: IntegrityMode,
    /// Chunked-pipeline tuning (chunk size, worker threads).
    pub pipeline: PipelineConfig,
    /// Bounded-retry policy for node I/O (reads, ingest writes,
    /// repairs). Backoff is simulated; jitter is drawn from a DRBG
    /// derived from `rng_seed`, so runs replay identically.
    pub retry: RetryPolicy,
    /// Content-addressed dedup mode: `Some` makes ingest chunk payloads
    /// with a content-defined chunker, store each distinct block once,
    /// and record objects as Merkle block trees. `None` (the default)
    /// keeps the classic one-object-one-shard-set layout.
    pub dedup: Option<DedupConfig>,
    /// Shard count for the manifest catalog ([`FleetCatalog`]). Purely
    /// a concurrency knob: iteration order and every campaign result
    /// are independent of it (clamped to at least 1).
    pub catalog_shards: usize,
    /// How the cluster executes the per-node legs of batched
    /// operations. `None` (the default) keeps whatever the cluster was
    /// built with — sequential dispatch unless the
    /// `AEON_FORCE_DISPATCH` environment override is set. `Some`
    /// overrides the cluster, including one supplied to
    /// [`Archive::with_cluster`].
    pub dispatch: Option<DispatchPolicy>,
}

impl ArchiveConfig {
    /// Creates a configuration with enough sites for the policy's shard
    /// count (one node per site — full dispersal) and sensible defaults.
    pub fn new(policy: PolicyKind) -> Self {
        let shard_count = policy.shard_count().max(1);
        ArchiveConfig {
            policy,
            sites: (0..shard_count).map(|i| format!("site-{i}")).collect(),
            nodes_per_site: 1,
            year: 2026,
            master_key: [0x42; 32],
            rng_seed: 0xAE0_0AE0,
            integrity: IntegrityMode::HashChain,
            pipeline: PipelineConfig::default(),
            retry: RetryPolicy::default(),
            dedup: None,
            catalog_shards: DEFAULT_CATALOG_SHARDS,
            dispatch: None,
        }
    }

    /// Overrides the node-I/O retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the integrity mode.
    pub fn with_integrity(mut self, mode: IntegrityMode) -> Self {
        self.integrity = mode;
        self
    }

    /// Overrides the chunked-pipeline tuning.
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Overrides the simulated year.
    pub fn with_year(mut self, year: u32) -> Self {
        self.year = year;
        self
    }

    /// Enables content-addressed dedup mode.
    pub fn with_dedup(mut self, dedup: DedupConfig) -> Self {
        self.dedup = Some(dedup);
        self
    }

    /// Overrides the manifest-catalog shard count.
    pub fn with_catalog_shards(mut self, shards: usize) -> Self {
        self.catalog_shards = shards;
        self
    }

    /// Overrides the cluster's dispatch policy for batched operations
    /// ([`DispatchPolicy::Parallel`] overlaps per-node transfers on
    /// virtual lanes; payloads and failures stay byte-identical, only
    /// virtual timing changes).
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = Some(dispatch);
        self
    }
}

/// Errors from archive operations.
#[derive(Debug)]
pub enum ArchiveError {
    /// Policy-layer failure.
    Policy(PolicyError),
    /// Cluster-layer failure.
    Cluster(ClusterError),
    /// The object does not exist.
    UnknownObject(ObjectId),
    /// Retrieved data failed its digest check.
    IntegrityViolation(ObjectId),
    /// Too few healthy shards remain (or landed, for writes) to stay
    /// within the policy's `(n, k)` redundancy budget.
    DegradedBeyondBudget {
        /// The affected object.
        id: ObjectId,
        /// Healthy shards available (read) or durably written (write).
        available: usize,
        /// The policy's read threshold `k`.
        required: usize,
        /// Shards discarded because their bytes failed the per-shard
        /// digest check.
        corrupt: usize,
    },
    /// The operation does not apply to the object's policy.
    UnsupportedOperation(&'static str),
    /// An Entropic-policy ingest with insufficient payload entropy.
    LowEntropy {
        /// Estimated bits of entropy per byte.
        bits_per_byte: f64,
    },
    /// Timestamping failure.
    Timestamp(String),
    /// Channel-layer failure during a shard shipment.
    Channel(String),
    /// Secret-sharing protocol failure.
    Share(aeon_secretshare::ShareError),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Policy(e) => write!(f, "policy: {e}"),
            ArchiveError::Cluster(e) => write!(f, "cluster: {e}"),
            ArchiveError::UnknownObject(id) => write!(f, "unknown object {id}"),
            ArchiveError::IntegrityViolation(id) => write!(f, "integrity violation on {id}"),
            ArchiveError::DegradedBeyondBudget {
                id,
                available,
                required,
                corrupt,
            } => write!(
                f,
                "object {id} degraded beyond budget: {available} healthy shards \
                 (need {required}, {corrupt} corrupt)"
            ),
            ArchiveError::UnsupportedOperation(why) => write!(f, "unsupported operation: {why}"),
            ArchiveError::LowEntropy { bits_per_byte } => write!(
                f,
                "entropic policy requires high-entropy payloads (got {bits_per_byte:.2} bits/byte)"
            ),
            ArchiveError::Timestamp(why) => write!(f, "timestamping: {why}"),
            ArchiveError::Channel(why) => write!(f, "channel: {why}"),
            ArchiveError::Share(e) => write!(f, "secret sharing: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<PolicyError> for ArchiveError {
    fn from(e: PolicyError) -> Self {
        ArchiveError::Policy(e)
    }
}

impl From<ClusterError> for ArchiveError {
    fn from(e: ClusterError) -> Self {
        ArchiveError::Cluster(e)
    }
}

impl From<aeon_secretshare::ShareError> for ArchiveError {
    fn from(e: aeon_secretshare::ShareError) -> Self {
        ArchiveError::Share(e)
    }
}

impl From<RepairError> for ArchiveError {
    fn from(e: RepairError) -> Self {
        match e {
            RepairError::Policy(e) => ArchiveError::Policy(e),
            RepairError::Share(e) => ArchiveError::Share(e),
        }
    }
}

/// Per-object record kept by the archive.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Object identifier.
    pub id: ObjectId,
    /// User-supplied name.
    pub name: String,
    /// The policy the object is encoded under.
    pub policy: PolicyKind,
    /// Encode-time metadata.
    pub meta: EncodingMeta,
    /// Node placement, one entry per shard.
    pub placement: Vec<NodeId>,
    /// Payload length in bytes.
    pub logical_len: usize,
    /// SHA-256 of the payload.
    pub digest: [u8; 32],
    /// SHA-256 of each stored shard blob, indexed like `placement`.
    /// Degraded reads and repair use these to discard bit-rotted
    /// shards instead of feeding them to the decoder.
    pub shard_digests: Vec<[u8; 32]>,
    /// Year of ingest.
    pub created_year: u32,
    /// Refresh epochs completed (proactive policies).
    pub refresh_epochs: u64,
    /// Dedup-mode record: the object's Merkle root and leaf blocks.
    /// `None` for classic (non-dedup) objects, whose shards live under
    /// `placement` above.
    pub blocks: Option<DedupManifest>,
}

/// Health report from [`Archive::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Shards currently readable.
    pub shards_available: usize,
    /// Shards the policy needs.
    pub shards_required: usize,
    /// Whether a decode + digest check succeeded.
    pub intact: bool,
    /// Whether the timestamp chain (if any) verifies.
    pub chain_valid: Option<bool>,
}

/// Aggregate statistics from [`Archive::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveStats {
    /// Number of live objects.
    pub objects: usize,
    /// Sum of payload sizes.
    pub logical_bytes: u64,
    /// Bytes physically stored across the cluster.
    pub stored_bytes: u64,
    /// Measured expansion (stored / logical).
    pub expansion: f64,
}

/// A secure long-term archive over a simulated geo-dispersed cluster.
///
/// # Examples
///
/// ```
/// use aeon_core::{Archive, ArchiveConfig, PolicyKind};
///
/// let mut archive = Archive::in_memory(ArchiveConfig::new(PolicyKind::Shamir {
///     threshold: 3,
///     shares: 5,
/// }))?;
/// let id = archive.ingest(b"the long-term secret", "doc-1")?;
/// assert_eq!(archive.retrieve(&id)?, b"the long-term secret");
/// # Ok::<(), aeon_core::ArchiveError>(())
/// ```
pub struct Archive {
    pub(crate) config: ArchiveConfig,
    cluster: Cluster,
    pub(crate) keys: KeyStore,
    pub(crate) rng: ChaChaDrbg,
    pub(crate) manifests: FleetCatalog,
    /// Dedup mode: the authoritative block map (content hash → record).
    pub(crate) blocks: BTreeMap<BlockHash, BlockRecord>,
    /// Dedup mode: the bounded recency index consulted before `blocks`.
    pub(crate) dedup_index: BoundedIndex,
    chains: BTreeMap<ObjectId, DocumentChain>,
    ledger: Ledger,
    tsa: TimestampAuthority,
    committer: Committer,
    year: u32,
    counter: u64,
}

impl fmt::Debug for Archive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Archive")
            .field("policy", &self.config.policy)
            .field("objects", &self.manifests.len())
            .field("year", &self.year)
            .finish_non_exhaustive()
    }
}

impl Archive {
    /// Creates an archive over an in-memory cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::Policy`] for invalid default policies.
    pub fn in_memory(config: ArchiveConfig) -> Result<Self, ArchiveError> {
        config.policy.validate()?;
        let sites: Vec<&str> = config.sites.iter().map(|s| s.as_str()).collect();
        let mut cluster = Cluster::in_memory(&sites, config.nodes_per_site);
        if let Some(dispatch) = config.dispatch {
            cluster = cluster.with_dispatch(dispatch);
        }
        let mut rng = ChaChaDrbg::from_u64_seed(config.rng_seed);
        let tsa = TimestampAuthority::new(&mut rng, "wots-v1", config.year, 6);
        let dedup_index = BoundedIndex::new(config.dedup.as_ref().map_or(0, |d| d.index_capacity));
        Ok(Archive {
            keys: KeyStore::new(config.master_key),
            rng,
            cluster,
            manifests: FleetCatalog::new(config.catalog_shards),
            blocks: BTreeMap::new(),
            dedup_index,
            chains: BTreeMap::new(),
            ledger: Ledger::new(1),
            tsa,
            committer: Committer::new(ModpGroup::rfc3526_2048()),
            year: config.year,
            counter: 0,
            config,
        })
    }

    /// Creates an archive over a caller-supplied cluster (e.g. file-backed
    /// nodes or nodes shared with an adversary simulation).
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::Policy`] for invalid default policies.
    pub fn with_cluster(config: ArchiveConfig, cluster: Cluster) -> Result<Self, ArchiveError> {
        config.policy.validate()?;
        let cluster = match config.dispatch {
            Some(dispatch) => cluster.with_dispatch(dispatch),
            None => cluster,
        };
        let mut rng = ChaChaDrbg::from_u64_seed(config.rng_seed);
        let tsa = TimestampAuthority::new(&mut rng, "wots-v1", config.year, 6);
        let dedup_index = BoundedIndex::new(config.dedup.as_ref().map_or(0, |d| d.index_capacity));
        Ok(Archive {
            keys: KeyStore::new(config.master_key),
            rng,
            cluster,
            manifests: FleetCatalog::new(config.catalog_shards),
            blocks: BTreeMap::new(),
            dedup_index,
            chains: BTreeMap::new(),
            ledger: Ledger::new(1),
            tsa,
            committer: Committer::new(ModpGroup::rfc3526_2048()),
            year: config.year,
            counter: 0,
            config,
        })
    }

    /// The current simulated year.
    pub fn year(&self) -> u32 {
        self.year
    }

    /// Advances the simulated clock.
    ///
    /// # Panics
    ///
    /// Panics if `year` is in the past.
    pub fn advance_year(&mut self, year: u32) {
        assert!(year >= self.year, "time does not run backwards");
        self.year = year;
        self.tsa.advance_to(year);
    }

    /// The archive's cluster (for adversary simulations).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The archive's key store (for key-compromise simulations).
    pub fn keys(&self) -> &KeyStore {
        &self.keys
    }

    /// The public ledger of manifest digests.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The default policy.
    pub fn policy(&self) -> &PolicyKind {
        &self.config.policy
    }

    /// Ingests a payload under the default policy.
    ///
    /// # Errors
    ///
    /// See [`Archive::ingest_with_policy`].
    pub fn ingest(&mut self, payload: &[u8], name: &str) -> Result<ObjectId, ArchiveError> {
        self.ingest_with_policy(payload, name, self.config.policy.clone())
    }

    /// Ingests a payload under an explicit policy.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::LowEntropy`] for entropic policies on
    /// compressible payloads, or policy/cluster errors.
    pub fn ingest_with_policy(
        &mut self,
        payload: &[u8],
        name: &str,
        policy: PolicyKind,
    ) -> Result<ObjectId, ArchiveError> {
        policy.validate()?;
        if matches!(policy, PolicyKind::Entropic { .. }) && payload.len() >= 64 {
            let bits = estimate_entropy_bits_per_byte(payload);
            if bits < 6.0 {
                return Err(ArchiveError::LowEntropy {
                    bits_per_byte: bits,
                });
            }
        }
        let id = self.next_id(name);
        if self.config.dedup.is_some() {
            return self.ingest_dedup(payload, name, policy, id);
        }
        let write = plan::plan_write(
            &policy,
            &self.keys,
            &mut self.rng,
            &id,
            payload,
            &self.config.pipeline,
        )?;
        let placement = self.executor().place(id.as_str(), write.shards.len())?;
        let mut put_rng = self.op_rng("ingest", id.as_str());
        // Too few shards landing durably means the object could never
        // be read back: the executor rolls back whatever was written.
        if let Err(outcome) = self
            .executor()
            .commit_write(&write, &placement, &mut put_rng)
        {
            return Err(ArchiveError::DegradedBeyondBudget {
                id,
                available: outcome.written,
                required: write.required,
                corrupt: 0,
            });
        }

        let digest = Sha256::digest(payload);
        self.anchor_integrity(&id, payload)?;

        let manifest = Manifest {
            id: id.clone(),
            name: name.to_string(),
            policy,
            meta: write.meta,
            placement,
            logical_len: payload.len(),
            digest,
            shard_digests: write.shard_digests,
            created_year: self.year,
            refresh_epochs: 0,
            blocks: None,
        };
        self.manifests.insert(id.clone(), manifest);
        Ok(id)
    }

    /// Ingests a batch of payloads under the default policy with
    /// **batched plan execution**: every object is planned and anchored
    /// in submission order (drawing the archive's encode stream exactly
    /// as sequential [`Archive::ingest`] calls would), then all shard
    /// writes flush in one cross-object pass that groups first attempts
    /// by target node — one framed transfer per node per batch on
    /// media-priced clusters. Fault-free, the stored bytes, manifests,
    /// and object ids are byte-identical to ingesting one by one; under
    /// deterministic fault injection the per-key attempt schedules (and
    /// so outcomes) match too.
    ///
    /// Dedup-configured archives fall back to sequential ingest: block
    /// writes are already coalesced per object by the dedup pipeline.
    ///
    /// # Errors
    ///
    /// Returns the first per-object error in submission order. Objects
    /// earlier in the batch remain ingested; the failing object's
    /// shards are rolled back (its integrity anchor, written before the
    /// flush, may already be on the append-only ledger).
    pub fn ingest_many(&mut self, items: &[(&[u8], &str)]) -> Result<Vec<ObjectId>, ArchiveError> {
        if self.config.dedup.is_some() {
            return items
                .iter()
                .map(|(payload, name)| self.ingest(payload, name))
                .collect();
        }
        let policy = self.config.policy.clone();
        policy.validate()?;
        // Phase 1: plan and anchor per object, in submission order —
        // the same `self.rng` draw order as sequential ingest.
        let mut ids = Vec::with_capacity(items.len());
        let mut names = Vec::with_capacity(items.len());
        let mut digests = Vec::with_capacity(items.len());
        let mut lens = Vec::with_capacity(items.len());
        let mut plans = Vec::with_capacity(items.len());
        let mut placements = Vec::with_capacity(items.len());
        for (payload, name) in items {
            if matches!(policy, PolicyKind::Entropic { .. }) && payload.len() >= 64 {
                let bits = estimate_entropy_bits_per_byte(payload);
                if bits < 6.0 {
                    return Err(ArchiveError::LowEntropy {
                        bits_per_byte: bits,
                    });
                }
            }
            let id = self.next_id(name);
            let write = plan::plan_write(
                &policy,
                &self.keys,
                &mut self.rng,
                &id,
                payload,
                &self.config.pipeline,
            )?;
            let placement = self.executor().place(id.as_str(), write.shards.len())?;
            digests.push(Sha256::digest(payload));
            self.anchor_integrity(&id, payload)?;
            lens.push(payload.len());
            names.push(name.to_string());
            plans.push(write);
            placements.push(placement);
            ids.push(id);
        }
        // Phase 2: one node-grouped flush for the whole batch.
        let mut rngs: Vec<ChaChaDrbg> = ids
            .iter()
            .map(|id| self.op_rng("ingest", id.as_str()))
            .collect();
        let results = self.executor().commit_many(&plans, &placements, &mut rngs);
        // Phase 3: manifests, aborting at the first rolled-back object.
        let mut plan_iter = plans.into_iter();
        let mut placement_iter = placements.into_iter();
        for (i, result) in results.into_iter().enumerate() {
            let write = plan_iter.next().expect("one plan per result");
            let placement = placement_iter.next().expect("one placement per result");
            if let Err(outcome) = result {
                return Err(ArchiveError::DegradedBeyondBudget {
                    id: ids[i].clone(),
                    available: outcome.written,
                    required: write.required,
                    corrupt: 0,
                });
            }
            let manifest = Manifest {
                id: ids[i].clone(),
                name: names[i].clone(),
                policy: policy.clone(),
                meta: write.meta,
                placement,
                logical_len: lens[i],
                digest: digests[i],
                shard_digests: write.shard_digests,
                created_year: self.year,
                refresh_epochs: 0,
                blocks: None,
            };
            self.manifests.insert(ids[i].clone(), manifest);
        }
        Ok(ids)
    }

    /// Anchors a payload in the configured integrity machinery: no-op
    /// for `DigestOnly`, otherwise a timestamped document chain whose
    /// anchor is appended to the public ledger.
    pub(crate) fn anchor_integrity(
        &mut self,
        id: &ObjectId,
        payload: &[u8],
    ) -> Result<(), ArchiveError> {
        match self.config.integrity {
            IntegrityMode::DigestOnly => {}
            IntegrityMode::HashChain | IntegrityMode::PedersenChain => {
                let mode = if self.config.integrity == IntegrityMode::PedersenChain {
                    AnchorMode::PedersenHiding
                } else {
                    AnchorMode::HashDigest
                };
                self.ensure_tsa_capacity();
                let chain = DocumentChain::create(
                    &mut self.rng,
                    &mut self.tsa,
                    &self.committer,
                    mode,
                    payload,
                )
                .map_err(|e| ArchiveError::Timestamp(e.to_string()))?;
                self.ledger.append(self.year, chain.anchor().to_vec());
                self.chains.insert(id.clone(), chain);
            }
        }
        Ok(())
    }

    fn ensure_tsa_capacity(&mut self) {
        if self.tsa.remaining() == 0 {
            // Rotate to a fresh key under the same scheme family with a
            // bumped generation tag.
            let scheme = format!("{}+", self.tsa.scheme());
            self.tsa.rotate(&mut self.rng, &scheme, 6);
        }
    }

    /// Derives a per-operation DRBG seed. Keyed by the archive seed, an
    /// operation label, and the object id, so `&self` read paths stay
    /// deterministic without perturbing the archive's main encode
    /// stream. Dedup block encodes are keyed this way too (label
    /// `"block-encode"`, object `blk-<hash>`), which is what makes
    /// identical blocks encode identically regardless of which object —
    /// or which pipeline worker — reaches them first.
    pub(crate) fn op_seed(&self, label: &str, object: &str) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.config.rng_seed.to_le_bytes());
        h.update(label.as_bytes());
        h.update(object.as_bytes());
        h.finalize()
    }

    /// Derives a per-operation DRBG for retry jitter (see [`Archive::op_seed`]).
    pub(crate) fn op_rng(&self, label: &str, object: &str) -> ChaChaDrbg {
        ChaChaDrbg::from_seed(self.op_seed(label, object))
    }

    /// The configured node-I/O retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.config.retry
    }

    /// A plan executor over this archive's cluster and retry budget —
    /// the only path to node I/O for every module in this crate.
    pub(crate) fn executor(&self) -> PlanExecutor<'_> {
        PlanExecutor::new(&self.cluster, &self.config.retry)
    }

    /// Fetches an object's shards with bounded retry, then discards any
    /// whose bytes fail the per-shard digest check.
    pub(crate) fn fetch_shards(&self, manifest: &Manifest, label: &str) -> ShardsSnapshot {
        let mut rng = self.op_rng(label, manifest.id.as_str());
        self.executor()
            .read(&ReadPlan::for_manifest(manifest), &mut rng)
    }

    /// [`Archive::fetch_shards`] with the first attempt coalesced: one
    /// framed batch request per node, then individual retries with the
    /// remaining budget. Same rng derivation, so under deterministic
    /// fault injection the snapshot is identical to the sequential one.
    pub(crate) fn fetch_shards_batched(&self, manifest: &Manifest, label: &str) -> ShardsSnapshot {
        let mut rng = self.op_rng(label, manifest.id.as_str());
        self.executor()
            .read_batched(&ReadPlan::for_manifest(manifest), &mut rng)
    }

    /// Retrying, digest-filtered fetch by object id, for maintenance
    /// paths in sibling modules (repair, transfer). `None` if unknown.
    pub(crate) fn fetch_shards_for(&self, id: &ObjectId, label: &str) -> Option<ShardsSnapshot> {
        self.manifests
            .get(id)
            .map(|manifest| self.fetch_shards(&manifest, label))
    }

    /// Batched twin of [`Archive::fetch_shards_for`]: the fetch groups
    /// shard keys by node and ships one framed request per node.
    pub(crate) fn fetch_shards_for_batched(
        &self,
        id: &ObjectId,
        label: &str,
    ) -> Option<ShardsSnapshot> {
        self.manifests
            .get(id)
            .map(|manifest| self.fetch_shards_batched(&manifest, label))
    }

    /// Records the digest of a freshly rewritten shard (repair paths).
    pub(crate) fn set_shard_digest(&mut self, id: &ObjectId, shard: usize, digest: [u8; 32]) {
        self.manifests.update(id, |manifest| {
            if shard < manifest.shard_digests.len() {
                manifest.shard_digests[shard] = digest;
            }
        });
    }

    /// Retrieves and verifies an object.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownObject`],
    /// [`ArchiveError::IntegrityViolation`],
    /// [`ArchiveError::DegradedBeyondBudget`], or decode errors.
    pub fn retrieve(&self, id: &ObjectId) -> Result<Vec<u8>, ArchiveError> {
        self.retrieve_with_report(id).map(|(payload, _)| payload)
    }

    /// Retrieves an object in degraded mode, also returning the
    /// per-shard retry accounting. Shards are fetched under the
    /// configured [`RetryPolicy`]; erroring nodes are retried up to the
    /// attempt cap, bit-rotted shards are discarded via per-shard
    /// digests, and the decode proceeds from any `k` valid shards. The
    /// read fails only when fewer than `k` valid shards remain: with
    /// corruption in evidence that is an
    /// [`ArchiveError::IntegrityViolation`], otherwise an
    /// [`ArchiveError::DegradedBeyondBudget`].
    ///
    /// # Errors
    ///
    /// See [`Archive::retrieve`].
    pub fn retrieve_with_report(
        &self,
        id: &ObjectId,
    ) -> Result<(Vec<u8>, TransferReport), ArchiveError> {
        let manifest = self
            .manifests
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?;
        if manifest.blocks.is_some() {
            return self.retrieve_dedup(&manifest);
        }
        let snap = self.fetch_shards(&manifest, "retrieve");
        self.finish_retrieve(&manifest, snap)
    }

    /// [`Archive::retrieve`] with the shard fetch coalesced: one framed
    /// batch request per node holding shards of the object, then
    /// individual retries with the remaining budget. Identical payloads
    /// and typed failures to the sequential path under deterministic
    /// fault injection; on seek-priced media the fetch charges one
    /// positioning delay per node instead of one per shard. Dedup
    /// objects take the batched level-by-level tree walk.
    ///
    /// # Errors
    ///
    /// See [`Archive::retrieve`].
    pub fn retrieve_batched(&self, id: &ObjectId) -> Result<Vec<u8>, ArchiveError> {
        self.retrieve_with_report_batched(id)
            .map(|(payload, _)| payload)
    }

    /// [`Archive::retrieve_with_report`] over the batched read seam.
    ///
    /// # Errors
    ///
    /// See [`Archive::retrieve`].
    pub fn retrieve_with_report_batched(
        &self,
        id: &ObjectId,
    ) -> Result<(Vec<u8>, TransferReport), ArchiveError> {
        let manifest = self
            .manifests
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?;
        if manifest.blocks.is_some() {
            return self.retrieve_dedup_batched(&manifest);
        }
        let snap = self.fetch_shards_batched(&manifest, "retrieve");
        self.finish_retrieve(&manifest, snap)
    }

    /// Retrieves many objects in one cross-object fan-in: every
    /// object's shard fetches are grouped by source node and each node
    /// serves **one** framed batch request for the whole flush (then
    /// per-key retries with the remaining budget, drawing jitter from
    /// each object's own rng). Per-object outcomes — payload bytes and
    /// typed failures — are exactly what [`Archive::retrieve`] would
    /// return for each id; one unreadable object does not fail its
    /// neighbors. Dedup objects fetch through the batched tree walk,
    /// coalescing within the object rather than across the flush.
    pub fn retrieve_many(&self, ids: &[ObjectId]) -> Vec<Result<Vec<u8>, ArchiveError>> {
        let mut results: Vec<Option<Result<Vec<u8>, ArchiveError>>> =
            ids.iter().map(|_| None).collect();
        let mut pending: Vec<(usize, Manifest)> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            match self.manifests.get(id) {
                None => results[i] = Some(Err(ArchiveError::UnknownObject(id.clone()))),
                Some(m) if m.blocks.is_some() => {
                    results[i] = Some(self.retrieve_dedup_batched(&m).map(|(p, _)| p));
                }
                Some(m) => pending.push((i, m)),
            }
        }
        let plans: Vec<ReadPlan> = pending
            .iter()
            .map(|(_, m)| ReadPlan::for_manifest(m))
            .collect();
        let mut rngs: Vec<ChaChaDrbg> = pending
            .iter()
            .map(|(_, m)| self.op_rng("retrieve", m.id.as_str()))
            .collect();
        let snaps = self.executor().read_many(&plans, &mut rngs);
        for ((i, manifest), snap) in pending.iter().zip(snaps) {
            results[*i] = Some(self.finish_retrieve(manifest, snap).map(|(p, _)| p));
        }
        results
            .into_iter()
            .map(|r| r.expect("slot filled"))
            .collect()
    }

    /// Shared decode tail of every retrieval flavor: threshold check,
    /// policy decode, whole-payload digest check.
    fn finish_retrieve(
        &self,
        manifest: &Manifest,
        snap: ShardsSnapshot,
    ) -> Result<(Vec<u8>, TransferReport), ArchiveError> {
        let id = &manifest.id;
        let required = manifest.policy.read_threshold();
        if snap.valid < required {
            if snap.corrupt > 0 {
                return Err(ArchiveError::IntegrityViolation(id.clone()));
            }
            return Err(ArchiveError::DegradedBeyondBudget {
                id: id.clone(),
                available: snap.valid,
                required,
                corrupt: snap.corrupt,
            });
        }
        let payload = pipeline::decode_object(
            &manifest.policy,
            &self.keys,
            id.as_str(),
            &snap.shards,
            &manifest.meta,
            self.config.pipeline.workers,
        )?;
        if Sha256::digest(&payload) != manifest.digest {
            return Err(ArchiveError::IntegrityViolation(id.clone()));
        }
        Ok((payload, snap.report))
    }

    /// Deletes an object and its shards.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownObject`].
    pub fn delete(&mut self, id: &ObjectId) -> Result<(), ArchiveError> {
        let manifest = self
            .manifests
            .remove(id)
            .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?;
        if manifest.blocks.is_some() {
            self.release_dedup_refs(&manifest);
        } else {
            self.executor().delete(id.as_str(), &manifest.placement);
        }
        self.chains.remove(id);
        Ok(())
    }

    /// Checks an object's health without mutating anything.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownObject`].
    pub fn verify(
        &self,
        id: &ObjectId,
        sig_schedule: &SigBreakSchedule,
    ) -> Result<HealthReport, ArchiveError> {
        let manifest = self
            .manifests
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?;
        let chain_valid = self
            .chains
            .get(id)
            .map(|c| c.verify(sig_schedule, self.year).is_ok());
        if manifest.blocks.is_some() {
            // Dedup objects have no shard set of their own: report the
            // weakest referenced block's health instead.
            let (available, required) = self.dedup_health(&manifest);
            let intact = self.retrieve_dedup(&manifest).is_ok();
            return Ok(HealthReport {
                shards_available: available,
                shards_required: required,
                intact,
                chain_valid,
            });
        }
        let snap = self.fetch_shards(&manifest, "verify");
        let available = snap.valid;
        let intact = pipeline::decode_object(
            &manifest.policy,
            &self.keys,
            id.as_str(),
            &snap.shards,
            &manifest.meta,
            self.config.pipeline.workers,
        )
        .map(|p| Sha256::digest(&p) == manifest.digest)
        .unwrap_or(false);
        Ok(HealthReport {
            shards_available: available,
            shards_required: manifest.policy.read_threshold(),
            intact,
            chain_valid,
        })
    }

    /// Renews an object's timestamp chain with the authority's current
    /// scheme (call after rotating the TSA to a stronger scheme).
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnsupportedOperation`] if the object has no
    /// chain.
    pub fn renew_timestamp(&mut self, id: &ObjectId) -> Result<(), ArchiveError> {
        self.ensure_tsa_capacity();
        let chain = self
            .chains
            .get_mut(id)
            .ok_or(ArchiveError::UnsupportedOperation(
                "object has no timestamp chain",
            ))?;
        chain
            .renew(&mut self.tsa)
            .map_err(|e| ArchiveError::Timestamp(e.to_string()))
    }

    /// Rotates the timestamp authority to a new scheme (e.g. when the
    /// current signature scheme nears its break).
    pub fn rotate_timestamp_scheme(&mut self, scheme: &str) {
        self.tsa.rotate(&mut self.rng, scheme, 6);
    }

    /// Rotates the master key.
    pub fn rotate_master_key(&mut self, master: [u8; 32]) -> u32 {
        self.keys.rotate(master)
    }

    /// Looks up a manifest (cloned out of the sharded catalog).
    pub fn manifest(&self, id: &ObjectId) -> Option<Manifest> {
        self.manifests.get(id)
    }

    /// Iterates over a snapshot of all manifests, sorted by id (the
    /// catalog's canonical order, independent of shard count and
    /// insertion order).
    pub fn manifests(&self) -> impl Iterator<Item = Manifest> {
        self.manifests.snapshot().into_iter()
    }

    /// The sharded manifest catalog.
    pub fn catalog(&self) -> &FleetCatalog {
        &self.manifests
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ArchiveStats {
        let logical: u64 = self
            .manifests
            .snapshot()
            .iter()
            .map(|m| m.logical_len as u64)
            .sum();
        let stored = self.cluster.total_stored_bytes();
        ArchiveStats {
            objects: self.manifests.len(),
            logical_bytes: logical,
            stored_bytes: stored,
            expansion: if logical == 0 {
                0.0
            } else {
                stored as f64 / logical as f64
            },
        }
    }

    fn next_id(&mut self, name: &str) -> ObjectId {
        self.counter += 1;
        let mut h = Sha256::new();
        h.update(name.as_bytes());
        h.update(&self.counter.to_be_bytes());
        h.update(&self.config.rng_seed.to_be_bytes());
        let d = h.finalize();
        ObjectId(d.iter().take(16).map(|b| format!("{b:02x}")).collect())
    }
}

/// Crude Shannon-entropy estimate over byte frequencies.
pub fn estimate_entropy_bits_per_byte(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::{CryptoRng, SuiteId};

    fn shamir_archive() -> Archive {
        Archive::in_memory(ArchiveConfig::new(PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        }))
        .unwrap()
    }

    #[test]
    fn ingest_retrieve_roundtrip() {
        let mut a = shamir_archive();
        let id = a.ingest(b"payload one", "doc").unwrap();
        assert_eq!(a.retrieve(&id).unwrap(), b"payload one");
    }

    #[test]
    fn unknown_object() {
        let a = shamir_archive();
        let bogus = ObjectId("feedfacefeedface".into());
        assert!(matches!(
            a.retrieve(&bogus),
            Err(ArchiveError::UnknownObject(_))
        ));
    }

    #[test]
    fn distinct_ids_for_same_name() {
        let mut a = shamir_archive();
        let id1 = a.ingest(b"v1", "same-name").unwrap();
        let id2 = a.ingest(b"v2", "same-name").unwrap();
        assert_ne!(id1, id2);
        assert_eq!(a.retrieve(&id1).unwrap(), b"v1");
        assert_eq!(a.retrieve(&id2).unwrap(), b"v2");
    }

    #[test]
    fn delete_removes_data() {
        let mut a = shamir_archive();
        let id = a.ingest(b"gone soon", "d").unwrap();
        a.delete(&id).unwrap();
        assert!(matches!(
            a.retrieve(&id),
            Err(ArchiveError::UnknownObject(_))
        ));
        assert_eq!(a.cluster().total_stored_bytes(), 0);
        assert!(matches!(a.delete(&id), Err(ArchiveError::UnknownObject(_))));
    }

    #[test]
    fn verify_reports_health() {
        let mut a = shamir_archive();
        let id = a.ingest(b"healthy", "d").unwrap();
        let report = a.verify(&id, &SigBreakSchedule::new()).unwrap();
        assert_eq!(report.shards_available, 5);
        assert_eq!(report.shards_required, 3);
        assert!(report.intact);
        assert_eq!(report.chain_valid, Some(true));
    }

    #[test]
    fn refresh_preserves_object_and_counts_epochs() {
        let mut a = shamir_archive();
        let id = a.ingest(b"refresh me", "d").unwrap();
        let cost = a.refresh_object(&id).unwrap();
        assert!(cost.messages > 0);
        assert_eq!(a.manifest(&id).unwrap().refresh_epochs, 1);
        assert_eq!(a.retrieve(&id).unwrap(), b"refresh me");
    }

    #[test]
    fn refresh_rejected_for_non_shamir() {
        let mut a = Archive::in_memory(ArchiveConfig::new(PolicyKind::ErasureCoded {
            data: 2,
            parity: 1,
        }))
        .unwrap();
        let id = a.ingest(b"x", "d").unwrap();
        assert!(matches!(
            a.refresh_object(&id),
            Err(ArchiveError::UnsupportedOperation(_))
        ));
    }

    #[test]
    fn reencode_object_migrates_policy() {
        let mut a = Archive::in_memory(ArchiveConfig::new(PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 3,
            parity: 2,
        }))
        .unwrap();
        let id = a.ingest(b"migrate me to a cascade", "d").unwrap();
        let new_policy = PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 3,
            parity: 2,
        };
        let (read, written) = a.reencode_object(&id, new_policy.clone()).unwrap();
        assert!(read > 0 && written > 0);
        assert_eq!(a.manifest(&id).unwrap().policy, new_policy);
        assert_eq!(a.retrieve(&id).unwrap(), b"migrate me to a cascade");
    }

    #[test]
    fn reencode_all_counts() {
        let mut a = shamir_archive();
        for i in 0..4 {
            a.ingest(format!("obj {i}").as_bytes(), &format!("d{i}"))
                .unwrap();
        }
        let (count, read, written) = a
            .reencode_all(PolicyKind::Shamir {
                threshold: 2,
                shares: 4,
            })
            .unwrap();
        assert_eq!(count, 4);
        assert!(read > 0 && written > 0);
        for m in a.manifests() {
            assert_eq!(
                m.policy,
                PolicyKind::Shamir {
                    threshold: 2,
                    shares: 4
                }
            );
        }
    }

    #[test]
    fn entropy_gate_for_entropic_policy() {
        let mut a = Archive::in_memory(ArchiveConfig::new(PolicyKind::Entropic {
            data: 2,
            parity: 1,
        }))
        .unwrap();
        // Low-entropy payload rejected.
        let low = vec![0u8; 256];
        assert!(matches!(
            a.ingest(&low, "zeros"),
            Err(ArchiveError::LowEntropy { .. })
        ));
        // High-entropy payload accepted.
        let mut rng = ChaChaDrbg::from_u64_seed(5);
        let mut high = vec![0u8; 256];
        rng.fill_bytes(&mut high);
        let id = a.ingest(&high, "random").unwrap();
        assert_eq!(a.retrieve(&id).unwrap(), high);
    }

    #[test]
    fn stats_track_expansion() {
        let mut a = shamir_archive();
        a.ingest(&[0u8; 1000], "big").unwrap();
        let stats = a.stats();
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.logical_bytes, 1000);
        // Shamir 5 shares: 5x.
        assert!((stats.expansion - 5.0).abs() < 0.01);
    }

    #[test]
    fn corruption_detected_on_retrieve() {
        // Use a cluster we keep handles to.
        use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
        use std::sync::Arc;
        let handles: Vec<MemoryNode> = (0..3)
            .map(|i| MemoryNode::new(i, format!("s{i}")))
            .collect();
        let cluster = Cluster::new(
            handles
                .iter()
                .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
                .collect(),
        );
        let mut a = Archive::with_cluster(
            ArchiveConfig::new(PolicyKind::Replication { copies: 3 }),
            cluster,
        )
        .unwrap();
        let id = a.ingest(b"truth", "d").unwrap();
        // Corrupt every replica (replication picks the first available).
        for h in &handles {
            for key in h.keys() {
                h.corrupt(
                    &ShardKey::new(key.object.clone(), key.shard),
                    b"lies!".to_vec(),
                );
            }
        }
        assert!(matches!(
            a.retrieve(&id),
            Err(ArchiveError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn tsa_auto_rotates_when_exhausted() {
        // Height-6 TSA = 64 signatures; ingest 70 objects with chains.
        let mut a =
            Archive::in_memory(ArchiveConfig::new(PolicyKind::Replication { copies: 2 })).unwrap();
        for i in 0..70 {
            a.ingest(b"obj", &format!("d{i}")).unwrap();
        }
        assert_eq!(a.stats().objects, 70);
    }

    #[test]
    fn year_advances_and_is_monotonic() {
        let mut a = shamir_archive();
        a.advance_year(2050);
        assert_eq!(a.year(), 2050);
        let id = a.ingest(b"late", "d").unwrap();
        assert_eq!(a.manifest(&id).unwrap().created_year, 2050);
    }

    #[test]
    fn entropy_estimator_sane() {
        assert_eq!(estimate_entropy_bits_per_byte(&[]), 0.0);
        assert_eq!(estimate_entropy_bits_per_byte(&[7u8; 100]), 0.0);
        let uniform: Vec<u8> = (0..=255u8).collect();
        assert!((estimate_entropy_bits_per_byte(&uniform) - 8.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod rewrap_tests {
    use super::*;
    use crate::policy::PolicyKind;
    use aeon_crypto::SuiteId;

    #[test]
    fn cascade_rewrap_adds_layer_without_plaintext_access() {
        let mut a = Archive::in_memory(ArchiveConfig::new(PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac],
            data: 3,
            parity: 2,
        }))
        .unwrap();
        let id = a.ingest(b"wrap me deeper", "d").unwrap();
        a.add_cascade_layer(&id, SuiteId::ChaCha20Poly1305).unwrap();
        // Policy now carries both layers and the object still reads.
        match &a.manifest(&id).unwrap().policy {
            PolicyKind::Cascade { suites, .. } => {
                assert_eq!(
                    suites,
                    &vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305]
                );
            }
            other => panic!("unexpected policy {other:?}"),
        }
        assert_eq!(a.retrieve(&id).unwrap(), b"wrap me deeper");
        // A second re-wrap stacks again.
        a.add_cascade_layer(&id, SuiteId::Aes256CtrHmac).unwrap();
        assert_eq!(a.retrieve(&id).unwrap(), b"wrap me deeper");
    }

    #[test]
    fn rewrap_rejected_for_non_cascade() {
        let mut a = Archive::in_memory(ArchiveConfig::new(PolicyKind::Shamir {
            threshold: 2,
            shares: 3,
        }))
        .unwrap();
        let id = a.ingest(b"x", "d").unwrap();
        assert!(matches!(
            a.add_cascade_layer(&id, SuiteId::ChaCha20Poly1305),
            Err(ArchiveError::UnsupportedOperation(_))
        ));
    }

    #[test]
    fn pedersen_chain_integrity_mode() {
        let mut a = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Replication { copies: 2 })
                .with_integrity(IntegrityMode::PedersenChain),
        )
        .unwrap();
        let id = a.ingest(b"hidden anchored doc", "d").unwrap();
        let health = a.verify(&id, &SigBreakSchedule::new()).unwrap();
        assert!(health.intact);
        assert_eq!(health.chain_valid, Some(true));
        // The ledger entry is a group element, not the document digest.
        let anchor = a.ledger().entry(0).unwrap().payload.clone();
        assert_eq!(anchor.len(), 256);
        assert_ne!(
            &anchor[..32],
            aeon_crypto::Sha256::digest(b"hidden anchored doc").as_ref()
        );
    }
}

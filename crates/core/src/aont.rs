//! AONT-RS (Resch–Plank): all-or-nothing transform + Reed–Solomon
//! dispersal.
//!
//! The Cleversafe scheme the paper singles out as the *practical*
//! computational design point. Encoding:
//!
//! 1. Draw a random key `k`; compute ciphertext blocks
//!    `c_i = m_i ⊕ E_k(i)` (AES-256-CTR here).
//! 2. Append a "difference block" `c_{s+1} = k ⊕ H(c_1 ‖ … ‖ c_s)`.
//! 3. Erasure-code the package `c_1 … c_{s+1}` systematically `[n, t]`
//!    and disperse one codeword per node.
//!
//! Anyone holding `t` codewords rebuilds the package, recomputes the
//! hash, unmasks `k`, and decrypts — **no key management at all**. An
//! adversary with fewer than `t` codewords provably (while `E` and `H`
//! stand) learns nothing. The catch the paper highlights: if `E`/`H`
//! fall, a *single* share leaks plaintext — AONT-RS confidentiality is
//! computational, and harvest-now-decrypt-later defeats it.

use aeon_crypto::aes::Aes;
use aeon_crypto::{CryptoRng, Sha256};
use aeon_erasure::{CodeError, ErasureCode, ReedSolomon};

/// Errors from AONT-RS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AontError {
    /// The erasure-coding layer failed.
    Code(CodeError),
    /// The rebuilt package is malformed.
    CorruptPackage,
}

impl core::fmt::Display for AontError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AontError::Code(e) => write!(f, "erasure layer: {e}"),
            AontError::CorruptPackage => write!(f, "corrupt AONT package"),
        }
    }
}

impl std::error::Error for AontError {}

impl From<CodeError> for AontError {
    fn from(e: CodeError) -> Self {
        AontError::Code(e)
    }
}

/// AONT-RS codec with threshold `t` (data shards) and `n - t` parity.
#[derive(Debug, Clone)]
pub struct AontRs {
    rs: ReedSolomon,
}

impl AontRs {
    /// Creates a codec dispersing to `data + parity` nodes, any `data` of
    /// which suffice to rebuild.
    ///
    /// # Errors
    ///
    /// Propagates [`CodeError::InvalidParameters`].
    pub fn new(data: usize, parity: usize) -> Result<Self, AontError> {
        Ok(AontRs {
            rs: ReedSolomon::new(data, parity)?,
        })
    }

    /// Data (threshold) shard count.
    pub fn data_shards(&self) -> usize {
        self.rs.data_shards()
    }

    /// Total shard count.
    pub fn total_shards(&self) -> usize {
        self.rs.total_shards()
    }

    /// Storage expansion `n / t` (the package adds only 40 bytes).
    pub fn expansion(&self) -> f64 {
        self.rs.expansion()
    }

    /// Builds the AONT package: `ciphertext ‖ (k ⊕ H(ciphertext))`.
    fn package<R: CryptoRng + ?Sized>(rng: &mut R, payload: &[u8]) -> Vec<u8> {
        let key = aeon_crypto::random_array::<32, _>(rng);
        let mut ct = payload.to_vec();
        Aes::new_256(&key).apply_ctr(&[0u8; 16], &mut ct);
        let digest = Sha256::digest(&ct);
        let mut package = ct;
        for (k, d) in key.iter().zip(digest.iter()) {
            package.push(k ^ d);
        }
        package
    }

    /// Opens a rebuilt package back into the payload.
    fn unpackage(package: &[u8]) -> Result<Vec<u8>, AontError> {
        if package.len() < 32 {
            return Err(AontError::CorruptPackage);
        }
        let (ct, masked_key) = package.split_at(package.len() - 32);
        let digest = Sha256::digest(ct);
        let mut key = [0u8; 32];
        for (out, (m, d)) in key.iter_mut().zip(masked_key.iter().zip(digest.iter())) {
            *out = m ^ d;
        }
        let mut pt = ct.to_vec();
        Aes::new_256(&key).apply_ctr(&[0u8; 16], &mut pt);
        Ok(pt)
    }

    /// Encodes a payload into `n` dispersible shards.
    ///
    /// # Errors
    ///
    /// Propagates erasure-layer errors.
    pub fn encode<R: CryptoRng + ?Sized>(
        &self,
        rng: &mut R,
        payload: &[u8],
    ) -> Result<Vec<Vec<u8>>, AontError> {
        let package = Self::package(rng, payload);
        Ok(self.rs.encode(&package)?)
    }

    /// Decodes from any `t` surviving shards.
    ///
    /// # Errors
    ///
    /// Returns [`AontError::Code`] when too few shards survive or
    /// [`AontError::CorruptPackage`] on malformed data.
    pub fn decode(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<u8>, AontError> {
        let package = self.rs.decode(shards)?;
        Self::unpackage(&package)
    }

    /// The HNDL attack on AONT-RS: what a future adversary recovers from
    /// `stolen` shards once the underlying cipher/hash are broken.
    ///
    /// * With ≥ `t` shards: full plaintext **today**, no break needed —
    ///   AONT-RS has no key to steal; possession is decryption.
    /// * With < `t` shards and the cipher broken: each stolen *data*
    ///   shard's span of ciphertext decrypts (the break recovers `k`
    ///   without the difference block). We model this as recovering the
    ///   bytes covered by stolen systematic shards.
    /// * With < `t` shards and the cipher standing: nothing.
    pub fn simulate_hndl(
        &self,
        stolen: &[Option<Vec<u8>>],
        cipher_broken: bool,
    ) -> AontHndlOutcome {
        let have = stolen.iter().flatten().count();
        if have >= self.rs.data_shards() {
            if let Ok(pt) = self.decode(stolen) {
                return AontHndlOutcome::FullPlaintext(pt);
            }
        }
        if have == 0 {
            return AontHndlOutcome::Nothing;
        }
        if cipher_broken {
            // Partial: fraction of payload spanned by stolen data shards.
            let data_stolen = stolen.iter().take(self.rs.data_shards()).flatten().count();
            AontHndlOutcome::PartialPlaintext {
                fraction: data_stolen as f64 / self.rs.data_shards() as f64,
            }
        } else {
            AontHndlOutcome::Nothing
        }
    }
}

/// Outcome of the AONT-RS HNDL simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum AontHndlOutcome {
    /// The adversary recovered the full plaintext.
    FullPlaintext(Vec<u8>),
    /// The adversary recovered a fraction of the plaintext (broken cipher,
    /// sub-threshold shards).
    PartialPlaintext {
        /// Fraction of payload bytes exposed.
        fraction: f64,
    },
    /// The adversary learned nothing.
    Nothing,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn rng() -> ChaChaDrbg {
        ChaChaDrbg::from_u64_seed(77)
    }

    #[test]
    fn roundtrip() {
        let codec = AontRs::new(4, 2).unwrap();
        let mut r = rng();
        let payload = b"dispersed archival object payload";
        let shards: Vec<Option<Vec<u8>>> = codec
            .encode(&mut r, payload)
            .unwrap()
            .into_iter()
            .map(Some)
            .collect();
        assert_eq!(codec.decode(&shards).unwrap(), payload);
    }

    #[test]
    fn threshold_reconstruction() {
        let codec = AontRs::new(3, 2).unwrap();
        let mut r = rng();
        let payload: Vec<u8> = (0..200u8).collect();
        let encoded = codec.encode(&mut r, &payload).unwrap();
        // Any 3 of 5 shards suffice.
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        shards[0] = None;
        shards[3] = None;
        assert_eq!(codec.decode(&shards).unwrap(), payload);
    }

    #[test]
    fn below_threshold_fails() {
        let codec = AontRs::new(3, 2).unwrap();
        let mut r = rng();
        let encoded = codec.encode(&mut r, b"secret").unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(codec.decode(&shards), Err(AontError::Code(_))));
    }

    #[test]
    fn no_key_needed_with_threshold() {
        // Decoding uses no external key material — key is inside the
        // package. (This test is the "eliminates key management" claim.)
        let codec = AontRs::new(2, 1).unwrap();
        let mut r = rng();
        let shards: Vec<Option<Vec<u8>>> = codec
            .encode(&mut r, b"keyless")
            .unwrap()
            .into_iter()
            .map(Some)
            .collect();
        let fresh_codec = AontRs::new(2, 1).unwrap(); // no shared state
        assert_eq!(fresh_codec.decode(&shards).unwrap(), b"keyless");
    }

    #[test]
    fn randomized_encodings_differ() {
        let codec = AontRs::new(2, 1).unwrap();
        let mut r = rng();
        let e1 = codec.encode(&mut r, b"same payload").unwrap();
        let e2 = codec.encode(&mut r, b"same payload").unwrap();
        assert_ne!(e1, e2, "fresh key per encoding");
    }

    #[test]
    fn tampered_package_decrypts_to_garbage() {
        // AONT gives all-or-nothing *confidentiality*, not integrity: a
        // flipped ciphertext bit changes the digest, hence the key, hence
        // everything. Integrity must come from a separate layer.
        let codec = AontRs::new(2, 1).unwrap();
        let mut r = rng();
        let mut encoded = codec.encode(&mut r, b"integrity elsewhere").unwrap();
        encoded[0][9] ^= 1;
        let shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        let out = codec.decode(&shards).unwrap();
        assert_ne!(out, b"integrity elsewhere");
    }

    #[test]
    fn hndl_full_with_threshold_no_break() {
        let codec = AontRs::new(2, 1).unwrap();
        let mut r = rng();
        let encoded = codec.encode(&mut r, b"stolen at threshold").unwrap();
        let stolen = vec![Some(encoded[0].clone()), Some(encoded[1].clone()), None];
        match codec.simulate_hndl(&stolen, false) {
            AontHndlOutcome::FullPlaintext(pt) => assert_eq!(pt, b"stolen at threshold"),
            other => panic!("expected full plaintext, got {other:?}"),
        }
    }

    #[test]
    fn hndl_subthreshold_safe_until_break() {
        let codec = AontRs::new(3, 2).unwrap();
        let mut r = rng();
        let encoded = codec.encode(&mut r, b"harvest me").unwrap();
        let stolen = vec![Some(encoded[0].clone()), None, None, None, None];
        assert_eq!(
            codec.simulate_hndl(&stolen, false),
            AontHndlOutcome::Nothing
        );
        match codec.simulate_hndl(&stolen, true) {
            AontHndlOutcome::PartialPlaintext { fraction } => {
                assert!((fraction - 1.0 / 3.0).abs() < 1e-9);
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn expansion_is_near_rs_rate() {
        let codec = AontRs::new(4, 2).unwrap();
        assert!((codec.expansion() - 1.5).abs() < 1e-9);
        let mut r = rng();
        let payload = vec![0u8; 1 << 16];
        let encoded = codec.encode(&mut r, &payload).unwrap();
        let stored: usize = encoded.iter().map(|s| s.len()).sum();
        // 1.5x plus the 40-byte package overhead, amortized away.
        assert!((stored as f64 / payload.len() as f64 - 1.5).abs() < 0.01);
    }

    #[test]
    fn empty_payload() {
        let codec = AontRs::new(2, 2).unwrap();
        let mut r = rng();
        let shards: Vec<Option<Vec<u8>>> = codec
            .encode(&mut r, b"")
            .unwrap()
            .into_iter()
            .map(Some)
            .collect();
        assert_eq!(codec.decode(&shards).unwrap(), b"");
    }
}

//! The chunked, parallel encode/decode pipeline.
//!
//! The paper's §3.2 prices a re-encryption campaign in *months* because
//! the data path is throughput-bound; the ROADMAP's north star is an
//! encode path that runs "as fast as the hardware allows". This module
//! supplies that path: objects larger than a configurable chunk size
//! (default 1 MiB) are split into fixed-size chunks, each chunk is
//! encoded independently under the object's policy across a
//! `std::thread` worker pool, and the per-chunk shards are batched into
//! one framed blob per storage node so cluster placement and node I/O
//! still happen **once per object**, not once per chunk.
//!
//! # Chunk format
//!
//! An object of `L` bytes with chunk size `C` produces
//! `ceil(L / C)` chunks; chunk `j` is encoded exactly as a standalone
//! object would be, under the derived object context `"{id}#chunk{j}"`
//! (so AEAD keys and nonces are domain-separated per chunk). The shard
//! shipped to storage node `s` is the concatenation over chunks of
//! length-prefixed segments:
//!
//! ```text
//! shard[s] = [u32 BE len(seg_0_s)] seg_0_s  [u32 BE len(seg_1_s)] seg_1_s  ...
//! ```
//!
//! where `seg_j_s` is shard `s` of chunk `j`'s encoding. All segments of
//! a chunk have equal length (every policy produces equal-length
//! shards), so framing offsets are identical across nodes. Per-chunk
//! decode metadata lives in [`ChunkedMeta::chunk_metas`].
//!
//! Objects that fit in a single chunk bypass the framing entirely: the
//! pipeline output is byte-identical to the legacy whole-buffer
//! [`PolicyKind::encode`] path and `meta.chunked` stays `None`.
//!
//! # Determinism and worker-pool sizing
//!
//! Per-chunk DRBG seeds are drawn **serially** from the caller's RNG
//! before any worker starts, and workers re-seed a private [`ChaChaDrbg`]
//! per chunk. The encoded bytes are therefore a pure function of
//! `(rng state, policy, object id, payload, chunk size)` — independent
//! of the worker count and of thread scheduling. `workers = 1` runs
//! inline on the calling thread; `workers = N` spawns `min(N, chunks)`
//! scoped threads that pull chunk indices from a shared atomic counter.

use crate::keys::KeyStore;
use crate::policy::{Encoded, EncodingMeta, PolicyError, PolicyKind};
use aeon_crypto::{ChaChaDrbg, CryptoRng};
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default chunk size: 1 MiB.
pub const DEFAULT_CHUNK_SIZE: usize = 1 << 20;

/// Tuning knobs for the chunked pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Objects larger than this are split into chunks of this many bytes.
    pub chunk_size: usize,
    /// Worker threads for per-chunk encode/decode. `1` means fully
    /// serial (no threads spawned).
    pub workers: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunk_size: DEFAULT_CHUNK_SIZE,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl PipelineConfig {
    /// A fully serial configuration (one worker, default chunk size).
    pub fn serial() -> Self {
        PipelineConfig {
            workers: 1,
            ..PipelineConfig::default()
        }
    }

    /// Overrides the chunk size.
    pub fn with_chunk_size(mut self, bytes: usize) -> Self {
        self.chunk_size = bytes;
        self
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// Decode metadata for a chunked object: the chunk size used at encode
/// time plus each chunk's own [`EncodingMeta`] (entropic nonces, packed
/// parameters, key versions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedMeta {
    /// Chunk size in effect when the object was encoded.
    pub chunk_size: usize,
    /// One metadata record per chunk, in payload order.
    pub chunk_metas: Vec<EncodingMeta>,
}

impl ChunkedMeta {
    /// Number of chunks in the object.
    pub fn chunk_count(&self) -> usize {
        self.chunk_metas.len()
    }
}

/// One shard's batched blob plus its per-chunk segment byte ranges.
type ShardRanges<'a> = (&'a [u8], Vec<Range<usize>>);

/// The derived object context for chunk `j` of `object_id` — the string
/// under which per-chunk keys and nonces are derived.
pub fn chunk_object_id(object_id: &str, chunk: usize) -> String {
    format!("{object_id}#chunk{chunk}")
}

/// Runs `job(0..count)` across `workers` scoped threads, preserving
/// index order in the output. `workers <= 1` (or a single item) runs
/// inline on the calling thread.
pub(crate) fn run_indexed<T, F>(count: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let workers = workers.min(count);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= count {
                    break;
                }
                let out = job(j);
                *slots[j].lock() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every claimed slot"))
        .collect()
}

/// Encodes a payload through the chunked pipeline.
///
/// Payloads of at most `cfg.chunk_size` bytes take the legacy
/// whole-buffer path and return bit-identical output to
/// [`PolicyKind::encode`]; larger payloads are chunk-encoded in
/// parallel and assembled into framed per-node shards (see the module
/// docs for the format). Output is independent of `cfg.workers`.
///
/// # Errors
///
/// Returns [`PolicyError`] from validation or any chunk's encode.
pub fn encode_object<R: CryptoRng + ?Sized>(
    policy: &PolicyKind,
    keys: &KeyStore,
    rng: &mut R,
    object_id: &str,
    payload: &[u8],
    cfg: &PipelineConfig,
) -> Result<Encoded, PolicyError> {
    policy.validate()?;
    let chunk_size = cfg.chunk_size.max(1);
    if payload.len() <= chunk_size {
        return policy.encode(rng, keys, object_id, payload);
    }
    let chunks: Vec<&[u8]> = payload.chunks(chunk_size).collect();
    // Seeds are drawn serially from the caller's RNG *before* any worker
    // runs: shard bytes do not depend on worker count or scheduling.
    let seeds: Vec<[u8; 32]> = chunks
        .iter()
        .map(|_| {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            seed
        })
        .collect();
    let ids: Vec<String> = (0..chunks.len())
        .map(|j| chunk_object_id(object_id, j))
        .collect();

    let results = run_indexed(chunks.len(), cfg.workers.max(1), |j| {
        let mut chunk_rng = ChaChaDrbg::from_seed(seeds[j]);
        policy.encode(&mut chunk_rng, keys, &ids[j], chunks[j])
    });

    let shard_count = policy.shard_count();
    let mut shards: Vec<Vec<u8>> = vec![Vec::new(); shard_count];
    let mut chunk_metas = Vec::with_capacity(chunks.len());
    for encoded in results {
        let encoded = encoded?;
        debug_assert_eq!(encoded.shards.len(), shard_count);
        for (out, segment) in shards.iter_mut().zip(&encoded.shards) {
            out.extend_from_slice(&(segment.len() as u32).to_be_bytes());
            out.extend_from_slice(segment);
        }
        chunk_metas.push(encoded.meta);
    }
    Ok(Encoded {
        shards,
        meta: EncodingMeta {
            key_version: keys.current_version(),
            packed: None,
            entropic_nonce: None,
            chunked: Some(ChunkedMeta {
                chunk_size,
                chunk_metas,
            }),
        },
    })
}

/// Decodes an object encoded by [`encode_object`]. Non-chunked objects
/// (`meta.chunked == None`) go straight through [`PolicyKind::decode`];
/// chunked objects are parsed into per-chunk shard sets and decoded
/// across `workers` threads.
///
/// # Errors
///
/// Returns [`PolicyError::Malformed`] for corrupt framing and any
/// per-chunk decode failure.
pub fn decode_object(
    policy: &PolicyKind,
    keys: &KeyStore,
    object_id: &str,
    shards: &[Option<Vec<u8>>],
    meta: &EncodingMeta,
    workers: usize,
) -> Result<Vec<u8>, PolicyError> {
    let Some(chunked) = &meta.chunked else {
        return policy.decode(keys, object_id, shards, meta);
    };
    let chunk_count = chunked.chunk_count();
    // Frame-walk each shard once up front, but keep only segment
    // *offsets* into the original blob: each worker then materializes
    // exactly the one segment copy the decode API needs, instead of a
    // full per-shard split followed by a per-chunk clone.
    let columns: Vec<Option<ShardRanges>> = shards
        .iter()
        .map(|s| {
            s.as_ref()
                .map(|bytes| {
                    split_shard_ranges(bytes, chunk_count).map(|ranges| (bytes.as_slice(), ranges))
                })
                .transpose()
        })
        .collect::<Result<_, _>>()?;
    let ids: Vec<String> = (0..chunk_count)
        .map(|j| chunk_object_id(object_id, j))
        .collect();

    let results = run_indexed(chunk_count, workers.max(1), |j| {
        let chunk_shards: Vec<Option<Vec<u8>>> = columns
            .iter()
            .map(|col| {
                col.as_ref()
                    .map(|(bytes, ranges)| bytes[ranges[j].clone()].to_vec())
            })
            .collect();
        policy.decode(keys, &ids[j], &chunk_shards, &chunked.chunk_metas[j])
    });

    let mut payload = Vec::new();
    for chunk in results {
        payload.extend_from_slice(&chunk?);
    }
    Ok(payload)
}

/// Parses one framed shard's layout into `chunk_count` per-chunk byte
/// ranges without copying segment bodies.
///
/// # Errors
///
/// Returns [`PolicyError::Malformed`] if the framing is truncated or
/// leaves trailing bytes.
pub fn split_shard_ranges(
    shard: &[u8],
    chunk_count: usize,
) -> Result<Vec<Range<usize>>, PolicyError> {
    let mut ranges = Vec::with_capacity(chunk_count);
    let mut pos = 0usize;
    for _ in 0..chunk_count {
        let Some(header) = shard.get(pos..pos + 4) else {
            return Err(PolicyError::Malformed(
                "chunked shard truncated inside a segment header".into(),
            ));
        };
        let len = u32::from_be_bytes(header.try_into().expect("4-byte slice")) as usize;
        pos += 4;
        if shard.get(pos..pos + len).is_none() {
            return Err(PolicyError::Malformed(
                "chunked shard truncated inside a segment body".into(),
            ));
        }
        ranges.push(pos..pos + len);
        pos += len;
    }
    if pos != shard.len() {
        return Err(PolicyError::Malformed(
            "chunked shard has trailing bytes after the last segment".into(),
        ));
    }
    Ok(ranges)
}

/// Parses one framed shard into its `chunk_count` per-chunk segments
/// (owned copies; [`split_shard_ranges`] is the zero-copy layout walk).
///
/// # Errors
///
/// Returns [`PolicyError::Malformed`] if the framing is truncated or
/// leaves trailing bytes.
pub fn split_shard_segments(shard: &[u8], chunk_count: usize) -> Result<Vec<Vec<u8>>, PolicyError> {
    let ranges = split_shard_ranges(shard, chunk_count)?;
    Ok(ranges.into_iter().map(|r| shard[r].to_vec()).collect())
}

/// Reassembles per-chunk segments (one per chunk, in order) into a
/// framed shard — the inverse of [`split_shard_segments`].
pub fn join_shard_segments<S: AsRef<[u8]>>(segments: &[S]) -> Vec<u8> {
    let total: usize = segments.iter().map(|s| s.as_ref().len() + 4).sum();
    let mut out = Vec::with_capacity(total);
    for segment in segments {
        let segment = segment.as_ref();
        out.extend_from_slice(&(segment.len() as u32).to_be_bytes());
        out.extend_from_slice(segment);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::SuiteId;

    fn fixtures() -> (ChaChaDrbg, KeyStore) {
        (ChaChaDrbg::from_u64_seed(77), KeyStore::new([3u8; 32]))
    }

    fn all_policies() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Replication { copies: 3 },
            PolicyKind::ErasureCoded { data: 4, parity: 2 },
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
            PolicyKind::AontRs { data: 4, parity: 2 },
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
            PolicyKind::PackedShamir {
                privacy: 2,
                pack: 2,
                shares: 6,
            },
            PolicyKind::LeakageResilientShamir {
                threshold: 3,
                shares: 5,
                source_len: 32,
            },
            PolicyKind::Entropic { data: 4, parity: 2 },
        ]
    }

    fn test_payload(len: usize) -> Vec<u8> {
        // High-entropy-ish but deterministic (Entropic needs no gate at
        // this layer, but keep it realistic).
        let mut rng = ChaChaDrbg::from_u64_seed(0xC0FFEE);
        let mut p = vec![0u8; len];
        rng.fill_bytes(&mut p);
        p
    }

    #[test]
    fn small_objects_match_legacy_encode_exactly() {
        let payload = test_payload(900);
        let cfg = PipelineConfig::serial().with_chunk_size(1024);
        for policy in all_policies() {
            let (mut rng_a, keys) = fixtures();
            let mut rng_b = ChaChaDrbg::from_u64_seed(77);
            let legacy = policy.encode(&mut rng_a, &keys, "obj", &payload).unwrap();
            let piped = encode_object(&policy, &keys, &mut rng_b, "obj", &payload, &cfg).unwrap();
            assert_eq!(legacy.shards, piped.shards, "{policy:?}");
            assert!(piped.meta.chunked.is_none(), "{policy:?}");
        }
    }

    #[test]
    fn chunked_roundtrip_every_policy() {
        let payload = test_payload(10_000);
        let cfg = PipelineConfig::serial()
            .with_chunk_size(1024)
            .with_workers(3);
        for policy in all_policies() {
            let (mut rng, keys) = fixtures();
            let enc = encode_object(&policy, &keys, &mut rng, "obj", &payload, &cfg).unwrap();
            let chunked = enc.meta.chunked.as_ref().expect("multi-chunk object");
            assert_eq!(chunked.chunk_count(), 10, "{policy:?}");
            assert_eq!(enc.shards.len(), policy.shard_count(), "{policy:?}");
            let shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
            let dec = decode_object(&policy, &keys, "obj", &shards, &enc.meta, 3).unwrap();
            assert_eq!(dec, payload, "{policy:?}");
        }
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let payload = test_payload(8_192);
        for policy in all_policies() {
            let mut outputs = Vec::new();
            for workers in [1usize, 2, 5] {
                let (mut rng, keys) = fixtures();
                let cfg = PipelineConfig::serial()
                    .with_chunk_size(1000)
                    .with_workers(workers);
                let enc = encode_object(&policy, &keys, &mut rng, "det", &payload, &cfg).unwrap();
                outputs.push((enc.shards, enc.meta));
            }
            assert_eq!(outputs[0], outputs[1], "{policy:?}: 1 vs 2 workers");
            assert_eq!(outputs[0], outputs[2], "{policy:?}: 1 vs 5 workers");
        }
    }

    #[test]
    fn chunked_survives_maximum_loss() {
        let payload = test_payload(5_000);
        let cfg = PipelineConfig::serial()
            .with_chunk_size(512)
            .with_workers(2);
        for policy in all_policies() {
            let (mut rng, keys) = fixtures();
            let enc = encode_object(&policy, &keys, &mut rng, "loss", &payload, &cfg).unwrap();
            let n = policy.shard_count();
            let t = policy.read_threshold();
            let mut shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
            for s in shards.iter_mut().take(n - t) {
                *s = None;
            }
            let dec = decode_object(&policy, &keys, "loss", &shards, &enc.meta, 2).unwrap();
            assert_eq!(dec, payload, "{policy:?}");
        }
    }

    #[test]
    fn corrupt_framing_is_a_typed_error() {
        let payload = test_payload(4_096);
        let policy = PolicyKind::ErasureCoded { data: 2, parity: 1 };
        let (mut rng, keys) = fixtures();
        let cfg = PipelineConfig::serial().with_chunk_size(1024);
        let enc = encode_object(&policy, &keys, &mut rng, "bad", &payload, &cfg).unwrap();
        // Truncate one shard mid-segment.
        let mut shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        let blob = shards[0].as_mut().unwrap();
        blob.truncate(blob.len() - 3);
        assert!(matches!(
            decode_object(&policy, &keys, "bad", &shards, &enc.meta, 1),
            Err(PolicyError::Malformed(_))
        ));
    }

    #[test]
    fn segment_framing_roundtrip() {
        let segments: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![9; 300]];
        let framed = join_shard_segments(&segments);
        assert_eq!(split_shard_segments(&framed, 3).unwrap(), segments);
        assert!(split_shard_segments(&framed, 4).is_err());
        assert!(split_shard_segments(&framed[..framed.len() - 1], 3).is_err());
    }

    #[test]
    fn chunk_ids_are_domain_separated() {
        assert_eq!(chunk_object_id("abc", 0), "abc#chunk0");
        assert_ne!(chunk_object_id("abc", 1), chunk_object_id("abc", 2));
    }
}

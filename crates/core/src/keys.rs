//! Key management: versioned master keys and per-object derivation.
//!
//! Every encrypted policy derives its object keys from a versioned master
//! key via HKDF, so rotating the master (after a suspected compromise)
//! re-keys *future* objects while the version history keeps old objects
//! readable until their re-encryption campaign completes — the bookkeeping
//! reality behind the paper's "growing history of encryption keys".

use aeon_crypto::hkdf;

/// A versioned key store.
///
/// # Examples
///
/// ```
/// use aeon_core::keys::KeyStore;
///
/// let mut ks = KeyStore::new([7u8; 32]);
/// let k1 = ks.object_key("obj-1", 0);
/// ks.rotate([8u8; 32]);
/// let k2 = ks.object_key("obj-1", 0);
/// assert_ne!(k1, k2); // new master, new derivation
/// assert_eq!(ks.object_key_for_version(0, "obj-1", 0), k1);
/// ```
#[derive(Debug, Clone)]
pub struct KeyStore {
    masters: Vec<[u8; 32]>,
}

impl KeyStore {
    /// Creates a store with an initial master key (version 0).
    pub fn new(master: [u8; 32]) -> Self {
        KeyStore {
            masters: vec![master],
        }
    }

    /// The current master-key version.
    pub fn current_version(&self) -> u32 {
        (self.masters.len() - 1) as u32
    }

    /// Rotates to a fresh master key, returning the new version.
    pub fn rotate(&mut self, master: [u8; 32]) -> u32 {
        self.masters.push(master);
        self.current_version()
    }

    /// Derives the layer key for an object under the *current* master.
    pub fn object_key(&self, object: &str, layer: u32) -> [u8; 32] {
        self.object_key_for_version(self.current_version(), object, layer)
    }

    /// Derives the layer key for an object under a historical master
    /// version.
    ///
    /// # Panics
    ///
    /// Panics if the version does not exist.
    pub fn object_key_for_version(&self, version: u32, object: &str, layer: u32) -> [u8; 32] {
        let master = self
            .masters
            .get(version as usize)
            .expect("unknown master key version");
        let info = format!("object:{object}:layer:{layer}");
        let okm = hkdf::derive(b"aeon-object-key", master, info.as_bytes(), 32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&okm);
        key
    }

    /// Derives a 16-byte entropic-cipher key.
    pub fn entropic_key(&self, object: &str) -> [u8; 16] {
        let okm = hkdf::derive(
            b"aeon-entropic-key",
            &self.masters[self.masters.len() - 1],
            object.as_bytes(),
            16,
        );
        let mut key = [0u8; 16];
        key.copy_from_slice(&okm);
        key
    }

    /// Number of master versions retained (the key-history burden).
    pub fn history_len(&self) -> usize {
        self.masters.len()
    }

    /// Adversary hook: exposes a historical master, modelling key theft.
    pub fn exfiltrate_for_simulation(&self, version: u32) -> Option<[u8; 32]> {
        self.masters.get(version as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_separated() {
        let ks = KeyStore::new([1u8; 32]);
        assert_eq!(ks.object_key("a", 0), ks.object_key("a", 0));
        assert_ne!(ks.object_key("a", 0), ks.object_key("b", 0));
        assert_ne!(ks.object_key("a", 0), ks.object_key("a", 1));
    }

    #[test]
    fn rotation_preserves_history() {
        let mut ks = KeyStore::new([1u8; 32]);
        let old = ks.object_key("x", 0);
        let v1 = ks.rotate([2u8; 32]);
        assert_eq!(v1, 1);
        assert_eq!(ks.current_version(), 1);
        assert_eq!(ks.history_len(), 2);
        assert_eq!(ks.object_key_for_version(0, "x", 0), old);
        assert_ne!(ks.object_key("x", 0), old);
    }

    #[test]
    fn entropic_key_is_16_bytes_and_distinct() {
        let ks = KeyStore::new([3u8; 32]);
        assert_ne!(ks.entropic_key("a"), ks.entropic_key("b"));
    }

    #[test]
    #[should_panic(expected = "unknown master key version")]
    fn unknown_version_panics() {
        let ks = KeyStore::new([0u8; 32]);
        let _ = ks.object_key_for_version(5, "x", 0);
    }

    #[test]
    fn exfiltration_hook() {
        let mut ks = KeyStore::new([9u8; 32]);
        ks.rotate([10u8; 32]);
        assert_eq!(ks.exfiltrate_for_simulation(0), Some([9u8; 32]));
        assert_eq!(ks.exfiltrate_for_simulation(9), None);
    }
}

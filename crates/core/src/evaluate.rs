//! System evaluation: regenerating the paper's Table 1 and Figure 1 from
//! measured behaviour.
//!
//! Each [`SystemProfile`] models one of the eight systems the paper
//! surveys as a concrete `aeon` configuration (an at-rest policy plus an
//! in-transit channel). [`evaluate_profile`] then *measures* the row: it
//! ingests a reference workload, reads back the physical storage
//! expansion, and classifies confidentiality by construction (which
//! adversary model breaks it). [`figure1_points`] does the same for the
//! raw encodings of Figure 1.

use crate::archive::{Archive, ArchiveConfig, IntegrityMode};
use crate::policy::PolicyKind;
use aeon_crypto::{CryptoRng, SecurityLevel, SuiteId};

/// The in-transit channel family a system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// TLS-like computational channel (DH + AEAD).
    Computational,
    /// Information-theoretic channel (QKD-fed one-time pad).
    InformationTheoretic,
}

impl ChannelKind {
    /// The confidentiality level of the channel.
    pub fn level(self) -> SecurityLevel {
        match self {
            ChannelKind::Computational => SecurityLevel::Computational,
            ChannelKind::InformationTheoretic => SecurityLevel::InformationTheoretic,
        }
    }
}

/// Qualitative storage-cost buckets as used by the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostBucket {
    /// Expansion below 2× (erasure-coding class).
    Low,
    /// Expansion in [2, 3)× .
    Medium,
    /// Expansion at or above 3× (replication / secret-sharing class).
    High,
}

impl CostBucket {
    /// Buckets a measured expansion factor.
    pub fn from_expansion(expansion: f64) -> Self {
        if expansion < 2.0 {
            CostBucket::Low
        } else if expansion < 3.0 {
            CostBucket::Medium
        } else {
            CostBucket::High
        }
    }
}

impl core::fmt::Display for CostBucket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CostBucket::Low => "Low",
            CostBucket::Medium => "Medium",
            CostBucket::High => "High",
        };
        f.write_str(s)
    }
}

/// A modelled archival system (one row of Table 1).
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// System name as it appears in the paper.
    pub name: &'static str,
    /// At-rest encoding policy.
    pub at_rest: PolicyKind,
    /// In-transit channel.
    pub in_transit: ChannelKind,
}

impl SystemProfile {
    /// The eight systems of the paper's Table 1, modelled with
    /// representative parameters.
    pub fn paper_table1() -> Vec<SystemProfile> {
        vec![
            SystemProfile {
                // Cascade of ciphers over erasure-coded storage.
                name: "ArchiveSafeLT",
                at_rest: PolicyKind::Cascade {
                    suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                    data: 4,
                    parity: 2,
                },
                in_transit: ChannelKind::Computational,
            },
            SystemProfile {
                name: "AONT-RS",
                at_rest: PolicyKind::AontRs { data: 4, parity: 2 },
                in_transit: ChannelKind::Computational,
            },
            SystemProfile {
                // Proactive secret sharing with a ledger; shares at rest.
                name: "HasDPSS",
                at_rest: PolicyKind::Shamir {
                    threshold: 3,
                    shares: 5,
                },
                in_transit: ChannelKind::Computational,
            },
            SystemProfile {
                // Secret shares at rest, QKD channels in transit.
                name: "LINCOS",
                at_rest: PolicyKind::Shamir {
                    threshold: 3,
                    shares: 5,
                },
                in_transit: ChannelKind::InformationTheoretic,
            },
            SystemProfile {
                // PASIS offers a spectrum; model its secret-sharing mode.
                name: "PASIS",
                at_rest: PolicyKind::PackedShamir {
                    privacy: 2,
                    pack: 2,
                    shares: 6,
                },
                in_transit: ChannelKind::Computational,
            },
            SystemProfile {
                name: "POTSHARDS",
                at_rest: PolicyKind::Shamir {
                    threshold: 3,
                    shares: 5,
                },
                in_transit: ChannelKind::Computational,
            },
            SystemProfile {
                // Wong et al.: verifiable secret redistribution.
                name: "VSR Archive",
                at_rest: PolicyKind::Shamir {
                    threshold: 2,
                    shares: 4,
                },
                in_transit: ChannelKind::Computational,
            },
            SystemProfile {
                name: "AWS/Azure/GCP",
                at_rest: PolicyKind::Encrypted {
                    suite: SuiteId::Aes256CtrHmac,
                    data: 6,
                    parity: 3,
                },
                in_transit: ChannelKind::Computational,
            },
        ]
    }
}

/// One evaluated row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// System name.
    pub system: &'static str,
    /// Measured in-transit confidentiality class.
    pub in_transit: SecurityLevel,
    /// Measured at-rest confidentiality class.
    pub at_rest: SecurityLevel,
    /// Measured storage expansion on the reference workload.
    pub expansion: f64,
    /// The codec's analytic expansion for the policy — what the
    /// measured figure converges to as framing overhead amortizes.
    pub analytic_expansion: f64,
    /// The paper's qualitative bucket for that expansion.
    pub cost: CostBucket,
}

/// Evaluates one profile by ingesting `payload` and measuring.
///
/// # Errors
///
/// Propagates archive errors (invalid profile parameters).
pub fn evaluate_profile(
    profile: &SystemProfile,
    payload: &[u8],
) -> Result<Table1Row, crate::archive::ArchiveError> {
    let config =
        ArchiveConfig::new(profile.at_rest.clone()).with_integrity(IntegrityMode::DigestOnly);
    let mut archive = Archive::in_memory(config)?;
    archive.ingest(payload, "reference-object")?;
    let stats = archive.stats();
    Ok(Table1Row {
        system: profile.name,
        in_transit: profile.in_transit.level(),
        at_rest: profile.at_rest.at_rest_level(),
        expansion: stats.expansion,
        analytic_expansion: profile.at_rest.expansion(),
        cost: CostBucket::from_expansion(stats.expansion),
    })
}

/// Evaluates all Table 1 profiles on a reference payload.
///
/// # Errors
///
/// Propagates the first profile failure.
pub fn table1(payload: &[u8]) -> Result<Vec<Table1Row>, crate::archive::ArchiveError> {
    SystemProfile::paper_table1()
        .iter()
        .map(|p| evaluate_profile(p, payload))
        .collect()
}

/// A point on the paper's Figure 1: measured storage cost vs an ordinal
/// security level.
#[derive(Debug, Clone)]
pub struct Figure1Point {
    /// Encoding name.
    pub encoding: &'static str,
    /// Measured expansion on the reference payload.
    pub expansion: f64,
    /// The codec's analytic expansion for the policy.
    pub analytic_expansion: f64,
    /// Confidentiality classification.
    pub level: SecurityLevel,
    /// Ordinal position on the figure's security axis (0 = none … 4 =
    /// full ITS with leakage resilience), as reported by the policy's
    /// codec.
    pub security_ordinal: u8,
}

/// Measures the Figure 1 encodings on `payload`. The security axis and
/// the analytic cost come from the codec registry, so the figure can
/// never drift from what the encodings actually implement.
///
/// # Errors
///
/// Propagates policy errors.
pub fn figure1_points<R: CryptoRng + ?Sized>(
    rng: &mut R,
    payload: &[u8],
) -> Result<Vec<Figure1Point>, crate::policy::PolicyError> {
    use crate::keys::KeyStore;
    let keys = KeyStore::new([1u8; 32]);
    let encodings: Vec<(&'static str, PolicyKind)> = vec![
        ("Replication", PolicyKind::Replication { copies: 3 }),
        (
            "Erasure coding",
            PolicyKind::ErasureCoded { data: 4, parity: 2 },
        ),
        (
            "Traditional encryption",
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
        ),
        (
            "Entropically secure encryption",
            PolicyKind::Entropic { data: 4, parity: 2 },
        ),
        (
            "Packed secret sharing",
            PolicyKind::PackedShamir {
                privacy: 2,
                pack: 2,
                shares: 6,
            },
        ),
        (
            "Secret sharing",
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
        ),
        (
            "Leakage-resilient secret sharing",
            PolicyKind::LeakageResilientShamir {
                threshold: 3,
                shares: 5,
                source_len: 64,
            },
        ),
    ];
    let mut out = Vec::with_capacity(encodings.len());
    for (name, policy) in encodings {
        let codec = policy.codec();
        let encoded = policy.encode(rng, &keys, "fig1-object", payload)?;
        let stored: usize = encoded.shards.iter().map(|s| s.len()).sum();
        out.push(Figure1Point {
            encoding: name,
            expansion: stored as f64 / payload.len().max(1) as f64,
            analytic_expansion: codec.expansion(),
            level: policy.at_rest_level(),
            security_ordinal: codec.security_ordinal(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn payload() -> Vec<u8> {
        // High-entropy reference payload (keeps the entropic policy happy).
        let mut rng = ChaChaDrbg::from_u64_seed(9);
        let mut p = vec![0u8; 4096];
        use aeon_crypto::CryptoRng as _;
        rng.fill_bytes(&mut p);
        p
    }

    #[test]
    fn table1_matches_paper_classifications() {
        let rows = table1(&payload()).unwrap();
        let find = |name: &str| rows.iter().find(|r| r.system == name).unwrap();

        // Paper Table 1, row by row.
        let aslt = find("ArchiveSafeLT");
        assert_eq!(aslt.in_transit, SecurityLevel::Computational);
        assert_eq!(aslt.at_rest, SecurityLevel::Computational);
        assert_eq!(aslt.cost, CostBucket::Low);

        let aont = find("AONT-RS");
        assert_eq!(aont.at_rest, SecurityLevel::Computational);
        assert_eq!(aont.cost, CostBucket::Low);

        let hasdpss = find("HasDPSS");
        assert_eq!(hasdpss.in_transit, SecurityLevel::Computational);
        assert_eq!(hasdpss.at_rest, SecurityLevel::InformationTheoretic);
        assert_eq!(hasdpss.cost, CostBucket::High);

        let lincos = find("LINCOS");
        assert_eq!(lincos.in_transit, SecurityLevel::InformationTheoretic);
        assert_eq!(lincos.at_rest, SecurityLevel::InformationTheoretic);
        assert_eq!(lincos.cost, CostBucket::High);

        let potshards = find("POTSHARDS");
        assert_eq!(potshards.at_rest, SecurityLevel::InformationTheoretic);
        assert_eq!(potshards.cost, CostBucket::High);

        let cloud = find("AWS/Azure/GCP");
        assert_eq!(cloud.at_rest, SecurityLevel::Computational);
        assert_eq!(cloud.cost, CostBucket::Low);

        // PASIS sits between: ITS at rest via (packed) sharing, at a cost
        // between EC and replication — the paper's "Low-High".
        let pasis = find("PASIS");
        assert_eq!(pasis.at_rest, SecurityLevel::InformationTheoretic);
        assert!(pasis.expansion < find("POTSHARDS").expansion);
    }

    #[test]
    fn figure1_cost_security_frontier() {
        let mut rng = ChaChaDrbg::from_u64_seed(10);
        let points = figure1_points(&mut rng, &payload()).unwrap();
        let find = |name: &str| points.iter().find(|p| p.encoding == name).unwrap();

        // Cost axis (measured): EC < encryption ≈ entropic < packed <
        // replication ≈ secret sharing < LRSS.
        let ec = find("Erasure coding").expansion;
        let enc = find("Traditional encryption").expansion;
        let ent = find("Entropically secure encryption").expansion;
        let packed = find("Packed secret sharing").expansion;
        let rep = find("Replication").expansion;
        let ss = find("Secret sharing").expansion;
        let lrss = find("Leakage-resilient secret sharing").expansion;
        assert!(
            ec <= enc && enc < packed,
            "ec {ec}, enc {enc}, packed {packed}"
        );
        assert!((ent - ec).abs() < 0.2, "entropic ≈ EC: {ent} vs {ec}");
        assert!(packed < ss, "packed {packed} < ss {ss}");
        assert!(rep <= ss + 0.01, "rep {rep} ≈ ss {ss}");
        assert!(ss < lrss, "ss {ss} < lrss {lrss}");

        // Security axis (ordinal): replication/EC = 0 … LRSS = 4.
        assert_eq!(find("Replication").security_ordinal, 0);
        assert!(
            find("Traditional encryption").security_ordinal
                < find("Entropically secure encryption").security_ordinal
        );
        assert!(
            find("Entropically secure encryption").security_ordinal
                < find("Secret sharing").security_ordinal
        );
        assert_eq!(find("Leakage-resilient secret sharing").security_ordinal, 4);
    }

    #[test]
    fn measured_expansion_agrees_with_codec_analytic() {
        // The codec's closed-form expansion and the measured figure must
        // agree to within 5% on a 4 KiB payload — the registry is the
        // single source of truth, the measurement its cross-check.
        let mut rng = ChaChaDrbg::from_u64_seed(11);
        for p in figure1_points(&mut rng, &payload()).unwrap() {
            let rel = (p.expansion - p.analytic_expansion).abs() / p.analytic_expansion;
            assert!(
                rel < 0.05,
                "{}: measured {} vs analytic {} (rel err {rel})",
                p.encoding,
                p.expansion,
                p.analytic_expansion
            );
        }
        for row in table1(&payload()).unwrap() {
            let rel = (row.expansion - row.analytic_expansion).abs() / row.analytic_expansion;
            assert!(
                rel < 0.05,
                "{}: measured {} vs analytic {} (rel err {rel})",
                row.system,
                row.expansion,
                row.analytic_expansion
            );
        }
    }

    #[test]
    fn cost_buckets() {
        assert_eq!(CostBucket::from_expansion(1.5), CostBucket::Low);
        assert_eq!(CostBucket::from_expansion(2.0), CostBucket::Medium);
        assert_eq!(CostBucket::from_expansion(5.0), CostBucket::High);
    }

    #[test]
    fn all_eight_systems_evaluated() {
        let rows = table1(&payload()).unwrap();
        assert_eq!(rows.len(), 8);
    }
}

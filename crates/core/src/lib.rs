//! The `aeon` archive core: policy-driven secure long-term archival
//! storage.
//!
//! This crate assembles the substrates — finite fields, from-scratch
//! crypto, erasure coding, secret sharing, integrity chains, channel and
//! storage simulation, adversary models — into the system the paper
//! (*Secure Archival is Hard... Really Hard*, HotStorage '24) argues the
//! community needs: an archive in which the **data encoding is a policy
//! decision** spanning the whole cost/security trade-off, and in which
//! every maintenance operation the paper prices (re-encryption campaigns,
//! proactive refresh, timestamp renewal) is a first-class API.
//!
//! * [`Archive`] — ingest / retrieve / verify / delete over a simulated
//!   geo-dispersed cluster, with renewable timestamp chains.
//! * [`PolicyKind`] — the nine at-rest encodings of the paper's design
//!   space, from replication to leakage-resilient secret sharing.
//! * [`aont`] — the AONT-RS dispersal codec (Resch–Plank).
//! * [`keys`] — versioned master keys and per-object derivation.
//! * [`pipeline`] — the chunked, parallel encode/decode data path:
//!   fixed-size chunks, a scoped-thread worker pool, and one batched
//!   shard write per object.
//! * [`evaluate`] — regenerates the paper's Table 1 and Figure 1 from
//!   measured behaviour.
//! * [`trustees`] — HasDPSS-style distributed custody of the master key:
//!   Pedersen-VSS shares among a trustee board, verifiable proactive
//!   refresh, and resharing to new boards.
//!
//! # Quickstart
//!
//! ```
//! use aeon_core::{Archive, ArchiveConfig, PolicyKind};
//!
//! let mut archive = Archive::in_memory(ArchiveConfig::new(PolicyKind::Shamir {
//!     threshold: 3,
//!     shares: 5,
//! }))?;
//! let id = archive.ingest(b"keep this for a century", "deed-1892")?;
//! assert_eq!(archive.retrieve(&id)?, b"keep this for a century");
//!
//! // Proactive refresh re-randomizes every share; the object is intact.
//! archive.refresh_object(&id)?;
//! assert_eq!(archive.retrieve(&id)?, b"keep this for a century");
//! # Ok::<(), aeon_core::ArchiveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod aont;
mod archive;
pub mod campaign;
pub mod catalog;
pub mod codec;
pub mod dedup;
pub mod evaluate;
pub mod executor;
pub mod fleet;
pub mod keys;
mod maintenance;
pub mod pipeline;
pub mod plan;
pub mod planner;
mod policy;
mod repair;
pub mod transfer;
pub mod trustees;

pub use archive::{
    estimate_entropy_bits_per_byte, Archive, ArchiveConfig, ArchiveError, ArchiveStats,
    HealthReport, IntegrityMode, Manifest, ObjectId,
};
pub use campaign::{
    BandwidthScheduler, CampaignClockStats, CampaignProgress, MeasuredCampaign,
    ReencodeCampaignDriver, MAX_RESERVED_FRACTION,
};
pub use catalog::{FleetCatalog, DEFAULT_CATALOG_SHARDS};
pub use codec::{Codec, CodecRegistry, CodecRepair};
pub use dedup::{
    block_object_id, BlockKind, BlockRecord, CatalogEntry, DedupConfig, DedupManifest, DedupStats,
};
pub use evaluate::{
    figure1_points, table1, ChannelKind, CostBucket, Figure1Point, SystemProfile, Table1Row,
};
pub use executor::{PlanExecutor, ShardsSnapshot, WriteOutcome};
pub use fleet::{
    FleetScan, FleetSimConfig, FleetSimReport, RepairBudget, RepairCampaignDriver, RepairQueue,
    RepairQueueOrder, RepairTicket,
};
pub use maintenance::ObjectReencode;
pub use pipeline::{ChunkedMeta, PipelineConfig, DEFAULT_CHUNK_SIZE};
pub use plan::{ReadPlan, RepairPlan, WritePlan};
pub use policy::{Encoded, EncodingMeta, PolicyError, PolicyKind, Recovery};
pub use repair::{FleetRepairOutcome, RepairMethod, RepairReport};

// Fault-tolerance and virtual-time knobs live in the store crate;
// re-exported here so archive users can configure retries and read the
// clock without a direct dependency.
pub use aeon_store::clock::{EpochSchedule, SimClock, SimDuration, SimTime};
pub use aeon_store::cluster::{ShardAttempt, TransferReport};
pub use aeon_store::lane::{DispatchPolicy, LaneClock};
pub use aeon_store::retry::{RetryPolicy, RetryStats};

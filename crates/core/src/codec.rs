//! The codec registry: one self-contained encoder per policy family.
//!
//! The paper's crypto-agility argument (§3.2) demands that *how bytes
//! are encoded* be swappable independently of *where shards live*. This
//! module is the "how" half of that seam: every [`PolicyKind`] family —
//! replication, Reed–Solomon, encrypt-then-code, cascade, AONT-RS,
//! Shamir, packed sharing, leakage-resilient sharing, entropic
//! encryption — implements the [`Codec`] trait, and a [`CodecRegistry`]
//! maps a policy value to its family's codec. `PolicyKind`'s own
//! methods delegate here, so the per-family knowledge (shard counts,
//! thresholds, analytic expansion, at-rest security class, partial
//! repair, layered re-wrap) lives in exactly one place.
//!
//! Codecs are **pure**: they transform bytes and never touch storage
//! nodes. All node I/O belongs to [`crate::executor::PlanExecutor`].
//! Object safety matters — plans hold `Box<dyn Codec>` — so encode
//! takes `&mut dyn CryptoRng`; the free
//! [`aeon_crypto::random_array`] keeps array draws byte-stream-
//! identical to the sized [`CryptoRng::gen_array`] path.

use crate::aont::AontRs;
use crate::keys::KeyStore;
use crate::policy::{Encoded, EncodingMeta, PolicyError, PolicyKind};
use aeon_crypto::cascade::Cascade;
use aeon_crypto::entropic::{EntropicCipher, EntropicCiphertext};
use aeon_crypto::{aead, CryptoRng, SecurityLevel, SuiteId, SuiteRegistry};
use aeon_erasure::{ErasureCode, ReedSolomon, Replicator};
use aeon_gf::Gf256;
use aeon_secretshare::lrss::{self, LrssParams, LrssShare};
use aeon_secretshare::packed::{self, PackedParams, PackedShare};
use aeon_secretshare::shamir::{self, Share};
use std::fmt;
use std::sync::OnceLock;

/// How a repair was performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairMethod {
    /// Nothing was missing.
    NotNeeded,
    /// Lost shards recomputed in place from survivors (MDS property).
    PartialErasure,
    /// Lost shares re-derived at their evaluation points (Shamir).
    PartialShamir,
    /// Whole object decoded and re-encoded (policies without partial
    /// repair structure).
    FullReencode,
}

/// Outcome of a codec's partial-repair attempt on one chunk's shard
/// set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecRepair {
    /// Every shard slot rebuilt from the survivors, survivors included
    /// unchanged. The caller writes back only the slots it knows were
    /// missing.
    Rebuilt {
        /// The complete shard set, in slot order.
        shards: Vec<Vec<u8>>,
        /// How the rebuild was done.
        method: RepairMethod,
    },
    /// The family has no per-shard repair structure (AONT packages,
    /// LRSS wrappers, packed rows with per-row randomness): the caller
    /// must decode the object and re-encode it from scratch.
    FullReencode,
}

/// Errors from [`Codec::repair_chunk`].
#[derive(Debug)]
pub enum RepairError {
    /// Parameter or shard-data failure.
    Policy(PolicyError),
    /// Secret-sharing protocol failure (Shamir re-derivation).
    Share(aeon_secretshare::ShareError),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Policy(e) => write!(f, "policy: {e}"),
            RepairError::Share(e) => write!(f, "secret sharing: {e}"),
        }
    }
}

impl std::error::Error for RepairError {}

/// A self-contained at-rest encoding family.
///
/// A codec owns everything [`PolicyKind`] needs to know about its
/// family: parameter validation, shard geometry, analytic cost, the
/// at-rest confidentiality class, encode/decode, and the optional
/// partial-repair and layered re-wrap hooks. Implementations are pure
/// byte transforms — no storage I/O, no global state — and object-safe
/// (`Box<dyn Codec>`), which is why [`Codec::encode`] takes
/// `&mut dyn CryptoRng` rather than a generic parameter.
pub trait Codec: fmt::Debug {
    /// Short family name (for diagnostics and registry listings).
    fn family(&self) -> &'static str;

    /// Validates the family parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidPolicy`] describing the violation.
    fn validate(&self) -> Result<(), PolicyError>;

    /// Number of shards produced per object.
    fn shard_count(&self) -> usize;

    /// Minimum shards needed to read an object back.
    fn read_threshold(&self) -> usize;

    /// Analytic storage expansion (stored bytes / payload bytes,
    /// ignoring constant overheads).
    fn expansion(&self) -> f64;

    /// The at-rest confidentiality classification against a
    /// *sub-threshold* adversary (fewer shards than the read
    /// threshold) — the sense in which the paper's Table 1 grades
    /// "Confidentiality: At Rest".
    fn at_rest_level(&self) -> SecurityLevel;

    /// Ordinal position on Figure 1's security axis (0 = none … 4 =
    /// ITS with leakage resilience). Derived from
    /// [`Codec::at_rest_level`] by default; leakage-resilient families
    /// override it to rank above plain ITS.
    fn security_ordinal(&self) -> u8 {
        match self.at_rest_level() {
            SecurityLevel::None => 0,
            SecurityLevel::Computational => 1,
            SecurityLevel::EntropicIts => 2,
            SecurityLevel::InformationTheoretic => 3,
        }
    }

    /// AEAD suites protecting at-rest bytes under this family (empty
    /// for plaintext and information-theoretic families). The planner
    /// uses this to schedule re-encode campaigns ahead of suite breaks.
    fn at_rest_suites(&self) -> Vec<SuiteId> {
        Vec::new()
    }

    /// Encodes a payload into one blob per storage node.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] variants on invalid parameters or
    /// internal failures.
    fn encode(
        &self,
        rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError>;

    /// Decodes an object from surviving shards.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::TooFewShards`] or decode failures.
    fn decode(
        &self,
        keys: &KeyStore,
        object_id: &str,
        shards: &[Option<Vec<u8>>],
        meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError>;

    /// Attempts a partial repair of one chunk's shard set (`None`
    /// slots are missing). The default is [`CodecRepair::FullReencode`]
    /// — families with per-shard structure (MDS codes, Shamir
    /// polynomials, replicas) override it.
    ///
    /// # Errors
    ///
    /// Returns [`RepairError`] when too few survivors remain.
    fn repair_chunk(&self, shards: &[Option<Vec<u8>>]) -> Result<CodecRepair, RepairError> {
        let _ = shards;
        Ok(CodecRepair::FullReencode)
    }

    /// Applies an emergency outer re-wrap to one chunk's shard set
    /// *without decrypting inner layers*, returning the full new shard
    /// set. Only layered families (Cascade) support this.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidPolicy`] for families without a
    /// layered structure, and shard/crypto errors otherwise.
    fn rewrap_chunk(
        &self,
        keys: &KeyStore,
        context: &str,
        key_version: u32,
        shards: &[Option<Vec<u8>>],
        new_suite: SuiteId,
    ) -> Result<Vec<Vec<u8>>, PolicyError> {
        let _ = (keys, context, key_version, shards, new_suite);
        Err(PolicyError::InvalidPolicy(
            "policy does not support layered re-wrap".into(),
        ))
    }

    /// The policy value describing this family after a
    /// [`Codec::rewrap_chunk`] with `new_suite`, or `None` for families
    /// that do not re-wrap.
    fn rewrapped_policy(&self, new_suite: SuiteId) -> Option<PolicyKind> {
        let _ = new_suite;
        None
    }
}

// ---------------------------------------------------------------------
// Shared helpers.

fn encode_code_err(e: aeon_erasure::CodeError) -> PolicyError {
    PolicyError::Malformed(e.to_string())
}

fn decode_code_err(e: aeon_erasure::CodeError) -> PolicyError {
    match e {
        aeon_erasure::CodeError::TooFewShards {
            available,
            required,
        } => PolicyError::TooFewShards {
            available,
            required,
        },
        other => PolicyError::Malformed(other.to_string()),
    }
}

fn erasure_params_valid(data: usize, parity: usize) -> Result<(), PolicyError> {
    if data == 0 || parity == 0 || data + parity > 255 {
        return Err(PolicyError::InvalidPolicy(
            "erasure parameters must satisfy 1 <= data, parity and n <= 255".to_string(),
        ));
    }
    Ok(())
}

/// Rebuilds missing rows of an RS codeword set in place: the stored
/// shards ARE code symbols, so the ciphertext is never touched.
fn rs_repair(
    data: usize,
    parity: usize,
    shards: &[Option<Vec<u8>>],
) -> Result<CodecRepair, RepairError> {
    let rs = ReedSolomon::new(data, parity)
        .map_err(|e| RepairError::Policy(PolicyError::Malformed(e.to_string())))?;
    let shards = rs
        .reconstruct_shards(shards)
        .map_err(|e| RepairError::Policy(PolicyError::Malformed(e.to_string())))?;
    Ok(CodecRepair::Rebuilt {
        shards,
        method: RepairMethod::PartialErasure,
    })
}

fn share_err(required: usize) -> impl Fn(aeon_secretshare::ShareError) -> PolicyError {
    move |e| match e {
        aeon_secretshare::ShareError::TooFewShares { provided, .. } => PolicyError::TooFewShards {
            available: provided,
            required,
        },
        other => PolicyError::Malformed(other.to_string()),
    }
}

fn collect_shamir(shards: &[Option<Vec<u8>>]) -> Vec<Share> {
    shards
        .iter()
        .enumerate()
        .filter_map(|(i, s)| {
            s.as_ref().map(|bytes| Share {
                index: (i + 1) as u8,
                data: bytes.clone(),
            })
        })
        .collect()
}

fn serialize_lrss(share: &LrssShare) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + share.stored_len());
    out.extend_from_slice(&(share.source.len() as u32).to_be_bytes());
    out.extend_from_slice(&share.source);
    out.extend_from_slice(&(share.seed.len() as u32).to_be_bytes());
    out.extend_from_slice(&share.seed);
    out.extend_from_slice(&(share.masked.len() as u32).to_be_bytes());
    out.extend_from_slice(&share.masked);
    out
}

fn deserialize_lrss(index: u8, bytes: &[u8]) -> Option<LrssShare> {
    let mut pos = 0usize;
    let mut take = |bytes: &[u8]| -> Option<Vec<u8>> {
        if pos + 4 > bytes.len() {
            return None;
        }
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().ok()?) as usize;
        pos += 4;
        if pos + len > bytes.len() {
            return None;
        }
        let out = bytes[pos..pos + len].to_vec();
        pos += len;
        Some(out)
    };
    let source = take(bytes)?;
    let seed = take(bytes)?;
    let masked = take(bytes)?;
    Some(LrssShare {
        index,
        source,
        seed,
        masked,
    })
}

// ---------------------------------------------------------------------
// The nine family codecs.

/// Plain `n`-way replication: no confidentiality, maximal simplicity.
#[derive(Debug, Clone)]
pub struct ReplicationCodec {
    /// Number of copies.
    pub copies: usize,
}

impl Codec for ReplicationCodec {
    fn family(&self) -> &'static str {
        "replication"
    }

    fn validate(&self) -> Result<(), PolicyError> {
        if self.copies == 0 {
            return Err(PolicyError::InvalidPolicy(
                "replication needs at least one copy".to_string(),
            ));
        }
        Ok(())
    }

    fn shard_count(&self) -> usize {
        self.copies
    }

    fn read_threshold(&self) -> usize {
        1
    }

    fn expansion(&self) -> f64 {
        self.copies as f64
    }

    fn at_rest_level(&self) -> SecurityLevel {
        SecurityLevel::None
    }

    fn encode(
        &self,
        _rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        _object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        let rep = Replicator::new(self.copies).map_err(encode_code_err)?;
        Ok(Encoded {
            shards: rep.encode(payload).map_err(encode_code_err)?,
            meta: EncodingMeta::plain(keys.current_version()),
        })
    }

    fn decode(
        &self,
        _keys: &KeyStore,
        _object_id: &str,
        shards: &[Option<Vec<u8>>],
        _meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        let rep =
            Replicator::new(self.copies).map_err(|e| PolicyError::Malformed(e.to_string()))?;
        rep.decode(shards).map_err(decode_code_err)
    }

    fn repair_chunk(&self, shards: &[Option<Vec<u8>>]) -> Result<CodecRepair, RepairError> {
        // Any surviving replica is the object.
        let replica = shards
            .iter()
            .flatten()
            .next()
            .cloned()
            .ok_or(RepairError::Policy(PolicyError::TooFewShards {
                available: 0,
                required: 1,
            }))?;
        Ok(CodecRepair::Rebuilt {
            shards: vec![replica; shards.len()],
            method: RepairMethod::PartialErasure,
        })
    }
}

/// Systematic Reed–Solomon `[data + parity, data]`: availability at
/// `n/k` cost, still no confidentiality.
#[derive(Debug, Clone)]
pub struct RsCodec {
    /// Data shards.
    pub data: usize,
    /// Parity shards.
    pub parity: usize,
}

impl Codec for RsCodec {
    fn family(&self) -> &'static str {
        "erasure"
    }

    fn validate(&self) -> Result<(), PolicyError> {
        erasure_params_valid(self.data, self.parity)
    }

    fn shard_count(&self) -> usize {
        self.data + self.parity
    }

    fn read_threshold(&self) -> usize {
        self.data
    }

    fn expansion(&self) -> f64 {
        (self.data + self.parity) as f64 / self.data as f64
    }

    fn at_rest_level(&self) -> SecurityLevel {
        SecurityLevel::None
    }

    fn encode(
        &self,
        _rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        _object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        let rs = ReedSolomon::new(self.data, self.parity).map_err(encode_code_err)?;
        Ok(Encoded {
            shards: rs.encode(payload).map_err(encode_code_err)?,
            meta: EncodingMeta::plain(keys.current_version()),
        })
    }

    fn decode(
        &self,
        _keys: &KeyStore,
        _object_id: &str,
        shards: &[Option<Vec<u8>>],
        _meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        let rs = ReedSolomon::new(self.data, self.parity)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        rs.decode(shards).map_err(decode_code_err)
    }

    fn repair_chunk(&self, shards: &[Option<Vec<u8>>]) -> Result<CodecRepair, RepairError> {
        rs_repair(self.data, self.parity, shards)
    }
}

/// Encrypt-then-erasure-code under a single suite (the commercial
/// cloud default: AES + EC).
#[derive(Debug, Clone)]
pub struct EncryptedRsCodec {
    /// The AEAD suite.
    pub suite: SuiteId,
    /// Data shards.
    pub data: usize,
    /// Parity shards.
    pub parity: usize,
}

impl Codec for EncryptedRsCodec {
    fn family(&self) -> &'static str {
        "encrypted"
    }

    fn validate(&self) -> Result<(), PolicyError> {
        erasure_params_valid(self.data, self.parity)
    }

    fn shard_count(&self) -> usize {
        self.data + self.parity
    }

    fn read_threshold(&self) -> usize {
        self.data
    }

    fn expansion(&self) -> f64 {
        (self.data + self.parity) as f64 / self.data as f64
    }

    fn at_rest_level(&self) -> SecurityLevel {
        SecurityLevel::Computational
    }

    fn at_rest_suites(&self) -> Vec<SuiteId> {
        vec![self.suite]
    }

    fn encode(
        &self,
        _rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        let key = keys.object_key(object_id, 0);
        let cipher = SuiteRegistry::new()
            .instantiate(self.suite, &key)
            .ok_or_else(|| PolicyError::InvalidPolicy(format!("{} is not an AEAD", self.suite)))?;
        let nonce = aead::derive_nonce(object_id.as_bytes());
        let ct = cipher.seal(&nonce, object_id.as_bytes(), payload);
        let rs = ReedSolomon::new(self.data, self.parity).map_err(encode_code_err)?;
        Ok(Encoded {
            shards: rs.encode(&ct).map_err(encode_code_err)?,
            meta: EncodingMeta::plain(keys.current_version()),
        })
    }

    fn decode(
        &self,
        keys: &KeyStore,
        object_id: &str,
        shards: &[Option<Vec<u8>>],
        meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        let rs = ReedSolomon::new(self.data, self.parity)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        let ct = rs.decode(shards).map_err(decode_code_err)?;
        let key = keys.object_key_for_version(meta.key_version, object_id, 0);
        let cipher = SuiteRegistry::new()
            .instantiate(self.suite, &key)
            .ok_or_else(|| PolicyError::InvalidPolicy(format!("{} is not an AEAD", self.suite)))?;
        let nonce = aead::derive_nonce(object_id.as_bytes());
        cipher
            .open(&nonce, object_id.as_bytes(), &ct)
            .map_err(|_| PolicyError::CryptoFailure("AEAD open failed".into()))
    }

    fn repair_chunk(&self, shards: &[Option<Vec<u8>>]) -> Result<CodecRepair, RepairError> {
        rs_repair(self.data, self.parity, shards)
    }
}

/// Cascade (robust combiner) of several suites, then erasure code —
/// the ArchiveSafeLT design.
#[derive(Debug, Clone)]
pub struct CascadeCodec {
    /// Suites in application order.
    pub suites: Vec<SuiteId>,
    /// Data shards.
    pub data: usize,
    /// Parity shards.
    pub parity: usize,
}

impl Codec for CascadeCodec {
    fn family(&self) -> &'static str {
        "cascade"
    }

    fn validate(&self) -> Result<(), PolicyError> {
        erasure_params_valid(self.data, self.parity)?;
        if self.suites.is_empty() {
            return Err(PolicyError::InvalidPolicy(
                "cascade needs at least one suite".to_string(),
            ));
        }
        if self.suites.iter().any(|s| s.is_information_theoretic()) {
            return Err(PolicyError::InvalidPolicy(
                "cascade layers must be AEAD suites".to_string(),
            ));
        }
        Ok(())
    }

    fn shard_count(&self) -> usize {
        self.data + self.parity
    }

    fn read_threshold(&self) -> usize {
        self.data
    }

    fn expansion(&self) -> f64 {
        (self.data + self.parity) as f64 / self.data as f64
    }

    fn at_rest_level(&self) -> SecurityLevel {
        SecurityLevel::Computational
    }

    fn at_rest_suites(&self) -> Vec<SuiteId> {
        self.suites.clone()
    }

    fn encode(
        &self,
        _rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        let master = keys.object_key(object_id, 0);
        let cascade = Cascade::new(&self.suites, &master)
            .map_err(|e| PolicyError::CryptoFailure(e.to_string()))?;
        let ct = cascade.encrypt(object_id.as_bytes(), payload);
        let rs = ReedSolomon::new(self.data, self.parity).map_err(encode_code_err)?;
        Ok(Encoded {
            shards: rs.encode(&ct).map_err(encode_code_err)?,
            meta: EncodingMeta::plain(keys.current_version()),
        })
    }

    fn decode(
        &self,
        keys: &KeyStore,
        object_id: &str,
        shards: &[Option<Vec<u8>>],
        meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        let rs = ReedSolomon::new(self.data, self.parity)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        let ct = rs.decode(shards).map_err(decode_code_err)?;
        let master = keys.object_key_for_version(meta.key_version, object_id, 0);
        let cascade = Cascade::new(&self.suites, &master)
            .map_err(|e| PolicyError::CryptoFailure(e.to_string()))?;
        cascade
            .decrypt(object_id.as_bytes(), &ct)
            .map_err(|e| PolicyError::CryptoFailure(e.to_string()))
    }

    fn repair_chunk(&self, shards: &[Option<Vec<u8>>]) -> Result<CodecRepair, RepairError> {
        rs_repair(self.data, self.parity, shards)
    }

    fn rewrap_chunk(
        &self,
        keys: &KeyStore,
        context: &str,
        key_version: u32,
        shards: &[Option<Vec<u8>>],
        new_suite: SuiteId,
    ) -> Result<Vec<Vec<u8>>, PolicyError> {
        // Rebuild the layered ciphertext from the erasure code, apply
        // one more AEAD layer, re-encode. No plaintext, no inner keys.
        let rs = ReedSolomon::new(self.data, self.parity)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        let ct = rs
            .decode(shards)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        let master = keys.object_key_for_version(key_version, context, 0);
        let mut cascade = Cascade::new(&self.suites, &master)
            .map_err(|e| PolicyError::CryptoFailure(e.to_string()))?;
        let old_depth = cascade.depth();
        cascade
            .add_layer(new_suite, &master)
            .map_err(|e| PolicyError::CryptoFailure(e.to_string()))?;
        let rewrapped = cascade.rewrap(context.as_bytes(), &ct, old_depth);
        rs.encode(&rewrapped)
            .map_err(|e| PolicyError::Malformed(e.to_string()))
    }

    fn rewrapped_policy(&self, new_suite: SuiteId) -> Option<PolicyKind> {
        let mut suites = self.suites.clone();
        suites.push(new_suite);
        Some(PolicyKind::Cascade {
            suites,
            data: self.data,
            parity: self.parity,
        })
    }
}

/// AONT-RS dispersal (Cleversafe): keyless, computational.
#[derive(Debug, Clone)]
pub struct AontRsCodec {
    /// Threshold shards.
    pub data: usize,
    /// Parity shards.
    pub parity: usize,
}

impl Codec for AontRsCodec {
    fn family(&self) -> &'static str {
        "aont-rs"
    }

    fn validate(&self) -> Result<(), PolicyError> {
        erasure_params_valid(self.data, self.parity)
    }

    fn shard_count(&self) -> usize {
        self.data + self.parity
    }

    fn read_threshold(&self) -> usize {
        self.data
    }

    fn expansion(&self) -> f64 {
        (self.data + self.parity) as f64 / self.data as f64
    }

    fn at_rest_level(&self) -> SecurityLevel {
        SecurityLevel::Computational
    }

    fn at_rest_suites(&self) -> Vec<SuiteId> {
        vec![SuiteId::Aes256CtrHmac]
    }

    fn encode(
        &self,
        rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        _object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        let codec = AontRs::new(self.data, self.parity)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        Ok(Encoded {
            shards: codec
                .encode(rng, payload)
                .map_err(|e| PolicyError::Malformed(e.to_string()))?,
            meta: EncodingMeta::plain(keys.current_version()),
        })
    }

    fn decode(
        &self,
        _keys: &KeyStore,
        _object_id: &str,
        shards: &[Option<Vec<u8>>],
        _meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        let codec = AontRs::new(self.data, self.parity)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        codec.decode(shards).map_err(|e| match e {
            crate::aont::AontError::Code(c) => decode_code_err(c),
            other => PolicyError::Malformed(other.to_string()),
        })
    }

    fn repair_chunk(&self, shards: &[Option<Vec<u8>>]) -> Result<CodecRepair, RepairError> {
        rs_repair(self.data, self.parity, shards)
    }
}

/// Shamir `t`-of-`n`: information-theoretic at `n×` cost (POTSHARDS).
#[derive(Debug, Clone)]
pub struct ShamirCodec {
    /// Reconstruction threshold.
    pub threshold: usize,
    /// Share count.
    pub shares: usize,
}

impl Codec for ShamirCodec {
    fn family(&self) -> &'static str {
        "shamir"
    }

    fn validate(&self) -> Result<(), PolicyError> {
        if self.threshold == 0 || self.threshold > self.shares || self.shares > 255 {
            return Err(PolicyError::InvalidPolicy(
                "Shamir parameters must satisfy 1 <= t <= n <= 255".to_string(),
            ));
        }
        Ok(())
    }

    fn shard_count(&self) -> usize {
        self.shares
    }

    fn read_threshold(&self) -> usize {
        self.threshold
    }

    fn expansion(&self) -> f64 {
        self.shares as f64
    }

    fn at_rest_level(&self) -> SecurityLevel {
        SecurityLevel::InformationTheoretic
    }

    fn encode(
        &self,
        rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        _object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        let out = shamir::split(rng, payload, self.threshold, self.shares)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        Ok(Encoded {
            shards: out.into_iter().map(|s| s.data).collect(),
            meta: EncodingMeta::plain(keys.current_version()),
        })
    }

    fn decode(
        &self,
        _keys: &KeyStore,
        _object_id: &str,
        shards: &[Option<Vec<u8>>],
        _meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        let collected = collect_shamir(shards);
        shamir::reconstruct(&collected, self.threshold).map_err(share_err(self.threshold))
    }

    fn repair_chunk(&self, shards: &[Option<Vec<u8>>]) -> Result<CodecRepair, RepairError> {
        // Re-derive each missing share at its own x from t survivors —
        // the secret is never reconstructed at x = 0.
        let survivors = collect_shamir(shards);
        let mut all: Vec<Vec<u8>> = Vec::with_capacity(shards.len());
        for (i, slot) in shards.iter().enumerate() {
            match slot {
                Some(bytes) => all.push(bytes.clone()),
                None => {
                    let x = Gf256::new((i + 1) as u8);
                    all.push(
                        shamir::reconstruct_at(&survivors, self.threshold, x)
                            .map_err(RepairError::Share)?,
                    );
                }
            }
        }
        Ok(CodecRepair::Rebuilt {
            shards: all,
            method: RepairMethod::PartialShamir,
        })
    }
}

/// Packed secret sharing: ITS below `privacy` shares at `n/k` cost.
#[derive(Debug, Clone)]
pub struct PackedShamirCodec {
    /// Privacy threshold.
    pub privacy: usize,
    /// Secrets per polynomial.
    pub pack: usize,
    /// Share count.
    pub shares: usize,
}

impl Codec for PackedShamirCodec {
    fn family(&self) -> &'static str {
        "packed-shamir"
    }

    fn validate(&self) -> Result<(), PolicyError> {
        PackedParams::new(self.privacy, self.pack, self.shares)
            .map_err(|e| PolicyError::InvalidPolicy(e.to_string()))?;
        Ok(())
    }

    fn shard_count(&self) -> usize {
        self.shares
    }

    fn read_threshold(&self) -> usize {
        self.privacy + self.pack
    }

    fn expansion(&self) -> f64 {
        self.shares as f64 / self.pack as f64
    }

    fn at_rest_level(&self) -> SecurityLevel {
        SecurityLevel::InformationTheoretic
    }

    fn encode(
        &self,
        rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        _object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        let params = PackedParams::new(self.privacy, self.pack, self.shares)
            .map_err(|e| PolicyError::InvalidPolicy(e.to_string()))?;
        let out = packed::split(rng, params, payload)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        let shards = out
            .into_iter()
            .map(|s| s.data.iter().flat_map(|v| v.to_be_bytes()).collect())
            .collect();
        Ok(Encoded {
            shards,
            meta: EncodingMeta {
                key_version: keys.current_version(),
                packed: Some((params, payload.len())),
                entropic_nonce: None,
                chunked: None,
            },
        })
    }

    fn decode(
        &self,
        _keys: &KeyStore,
        _object_id: &str,
        shards: &[Option<Vec<u8>>],
        meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        let Some((params, plain_len)) = meta.packed else {
            return Err(PolicyError::Malformed("missing packed metadata".into()));
        };
        let collected: Vec<PackedShare> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref().map(|bytes| PackedShare {
                    index: (i + 1) as u16,
                    data: bytes
                        .chunks_exact(2)
                        .map(|c| u16::from_be_bytes([c[0], c[1]]))
                        .collect(),
                })
            })
            .collect();
        let mut out = packed::reconstruct(params, &collected)
            .map_err(share_err(params.reconstruct_threshold()))?;
        out.truncate(plain_len);
        Ok(out)
    }
}

/// Shamir wrapped by the leakage-resilient compiler.
#[derive(Debug, Clone)]
pub struct LrssCodec {
    /// Reconstruction threshold.
    pub threshold: usize,
    /// Share count.
    pub shares: usize,
    /// Extractor source length per share, bytes.
    pub source_len: usize,
}

impl Codec for LrssCodec {
    fn family(&self) -> &'static str {
        "lrss"
    }

    fn validate(&self) -> Result<(), PolicyError> {
        if self.threshold == 0 || self.threshold > self.shares || self.shares > 255 {
            return Err(PolicyError::InvalidPolicy(
                "Shamir parameters must satisfy 1 <= t <= n <= 255".to_string(),
            ));
        }
        if self.source_len == 0 {
            return Err(PolicyError::InvalidPolicy(
                "LRSS source length must be positive".to_string(),
            ));
        }
        Ok(())
    }

    fn shard_count(&self) -> usize {
        self.shares
    }

    fn read_threshold(&self) -> usize {
        self.threshold
    }

    fn expansion(&self) -> f64 {
        // Each share of length L stores source + seed + masked =
        // source_len + (source_len + L) + L; expansion depends on L, so
        // report the large-object limit plus the n factor.
        self.shares as f64 * 2.0
    }

    fn at_rest_level(&self) -> SecurityLevel {
        SecurityLevel::InformationTheoretic
    }

    fn security_ordinal(&self) -> u8 {
        // Above plain ITS on Figure 1's axis: leakage resilience holds
        // even when every share leaks a bounded number of bits.
        4
    }

    fn encode(
        &self,
        rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        _object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        let base = shamir::split(rng, payload, self.threshold, self.shares)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        let wrapped = lrss::wrap(
            rng,
            &base,
            LrssParams {
                source_len: self.source_len,
            },
        )
        .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        Ok(Encoded {
            shards: wrapped.iter().map(serialize_lrss).collect(),
            meta: EncodingMeta::plain(keys.current_version()),
        })
    }

    fn decode(
        &self,
        _keys: &KeyStore,
        _object_id: &str,
        shards: &[Option<Vec<u8>>],
        _meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        let wrapped: Vec<LrssShare> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref()
                    .and_then(|bytes| deserialize_lrss((i + 1) as u8, bytes))
            })
            .collect();
        let base = lrss::unwrap(&wrapped);
        shamir::reconstruct(&base, self.threshold).map_err(share_err(self.threshold))
    }
}

/// Entropically secure encryption then erasure coding: ITS for
/// high-entropy payloads at erasure-coding cost.
#[derive(Debug, Clone)]
pub struct EntropicCodec {
    /// Data shards.
    pub data: usize,
    /// Parity shards.
    pub parity: usize,
}

impl Codec for EntropicCodec {
    fn family(&self) -> &'static str {
        "entropic"
    }

    fn validate(&self) -> Result<(), PolicyError> {
        erasure_params_valid(self.data, self.parity)
    }

    fn shard_count(&self) -> usize {
        self.data + self.parity
    }

    fn read_threshold(&self) -> usize {
        self.data
    }

    fn expansion(&self) -> f64 {
        (self.data + self.parity) as f64 / self.data as f64
    }

    fn at_rest_level(&self) -> SecurityLevel {
        SecurityLevel::EntropicIts
    }

    fn encode(
        &self,
        rng: &mut dyn CryptoRng,
        keys: &KeyStore,
        object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        let cipher = EntropicCipher::new(keys.entropic_key(object_id));
        let ct = cipher.encrypt(rng, payload);
        let rs = ReedSolomon::new(self.data, self.parity).map_err(encode_code_err)?;
        Ok(Encoded {
            shards: rs.encode(&ct.body).map_err(encode_code_err)?,
            meta: EncodingMeta {
                key_version: keys.current_version(),
                packed: None,
                entropic_nonce: Some(ct.nonce),
                chunked: None,
            },
        })
    }

    fn decode(
        &self,
        keys: &KeyStore,
        object_id: &str,
        shards: &[Option<Vec<u8>>],
        meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        let rs = ReedSolomon::new(self.data, self.parity)
            .map_err(|e| PolicyError::Malformed(e.to_string()))?;
        let body = rs.decode(shards).map_err(decode_code_err)?;
        let Some(nonce) = meta.entropic_nonce else {
            return Err(PolicyError::Malformed("missing entropic nonce".into()));
        };
        let cipher = EntropicCipher::new(keys.entropic_key(object_id));
        Ok(cipher.decrypt(&EntropicCiphertext { nonce, body }))
    }

    fn repair_chunk(&self, shards: &[Option<Vec<u8>>]) -> Result<CodecRepair, RepairError> {
        rs_repair(self.data, self.parity, shards)
    }
}

// ---------------------------------------------------------------------
// The registry.

#[derive(Debug)]
struct RegistryEntry {
    family: &'static str,
    build: fn(&PolicyKind) -> Option<Box<dyn Codec>>,
}

/// Maps [`PolicyKind`] values to their family's [`Codec`].
///
/// One entry per family; [`CodecRegistry::resolve`] walks the entries
/// and the first one that recognizes the policy builds the codec. The
/// process-wide instance is [`CodecRegistry::global`].
#[derive(Debug)]
pub struct CodecRegistry {
    entries: Vec<RegistryEntry>,
}

impl CodecRegistry {
    /// The registry of the nine built-in policy families.
    pub fn builtin() -> Self {
        let entries: Vec<RegistryEntry> = vec![
            RegistryEntry {
                family: "replication",
                build: |p| match p {
                    PolicyKind::Replication { copies } => {
                        Some(Box::new(ReplicationCodec { copies: *copies }) as Box<dyn Codec>)
                    }
                    _ => None,
                },
            },
            RegistryEntry {
                family: "erasure",
                build: |p| match p {
                    PolicyKind::ErasureCoded { data, parity } => Some(Box::new(RsCodec {
                        data: *data,
                        parity: *parity,
                    })
                        as Box<dyn Codec>),
                    _ => None,
                },
            },
            RegistryEntry {
                family: "encrypted",
                build: |p| match p {
                    PolicyKind::Encrypted {
                        suite,
                        data,
                        parity,
                    } => Some(Box::new(EncryptedRsCodec {
                        suite: *suite,
                        data: *data,
                        parity: *parity,
                    }) as Box<dyn Codec>),
                    _ => None,
                },
            },
            RegistryEntry {
                family: "cascade",
                build: |p| match p {
                    PolicyKind::Cascade {
                        suites,
                        data,
                        parity,
                    } => Some(Box::new(CascadeCodec {
                        suites: suites.clone(),
                        data: *data,
                        parity: *parity,
                    }) as Box<dyn Codec>),
                    _ => None,
                },
            },
            RegistryEntry {
                family: "aont-rs",
                build: |p| match p {
                    PolicyKind::AontRs { data, parity } => Some(Box::new(AontRsCodec {
                        data: *data,
                        parity: *parity,
                    })
                        as Box<dyn Codec>),
                    _ => None,
                },
            },
            RegistryEntry {
                family: "shamir",
                build: |p| match p {
                    PolicyKind::Shamir { threshold, shares } => Some(Box::new(ShamirCodec {
                        threshold: *threshold,
                        shares: *shares,
                    })
                        as Box<dyn Codec>),
                    _ => None,
                },
            },
            RegistryEntry {
                family: "packed-shamir",
                build: |p| match p {
                    PolicyKind::PackedShamir {
                        privacy,
                        pack,
                        shares,
                    } => Some(Box::new(PackedShamirCodec {
                        privacy: *privacy,
                        pack: *pack,
                        shares: *shares,
                    }) as Box<dyn Codec>),
                    _ => None,
                },
            },
            RegistryEntry {
                family: "lrss",
                build: |p| match p {
                    PolicyKind::LeakageResilientShamir {
                        threshold,
                        shares,
                        source_len,
                    } => Some(Box::new(LrssCodec {
                        threshold: *threshold,
                        shares: *shares,
                        source_len: *source_len,
                    }) as Box<dyn Codec>),
                    _ => None,
                },
            },
            RegistryEntry {
                family: "entropic",
                build: |p| match p {
                    PolicyKind::Entropic { data, parity } => Some(Box::new(EntropicCodec {
                        data: *data,
                        parity: *parity,
                    })
                        as Box<dyn Codec>),
                    _ => None,
                },
            },
        ];
        CodecRegistry { entries }
    }

    /// The process-wide registry of built-in families.
    pub fn global() -> &'static CodecRegistry {
        static REG: OnceLock<CodecRegistry> = OnceLock::new();
        REG.get_or_init(CodecRegistry::builtin)
    }

    /// Builds the codec for a policy.
    ///
    /// # Panics
    ///
    /// Panics if no registered family recognizes the policy — cannot
    /// happen for [`CodecRegistry::builtin`], which covers every
    /// [`PolicyKind`] variant.
    pub fn resolve(&self, policy: &PolicyKind) -> Box<dyn Codec> {
        self.entries
            .iter()
            .find_map(|e| (e.build)(policy))
            .expect("every PolicyKind variant has a registered codec family")
    }

    /// The family name a policy resolves to.
    ///
    /// # Panics
    ///
    /// Panics under the same (unreachable for built-ins) condition as
    /// [`CodecRegistry::resolve`].
    pub fn family_of(&self, policy: &PolicyKind) -> &'static str {
        self.entries
            .iter()
            .find(|e| (e.build)(policy).is_some())
            .map(|e| e.family)
            .expect("every PolicyKind variant has a registered codec family")
    }

    /// All registered family names, in registration order.
    pub fn families(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.family).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn fixtures() -> (ChaChaDrbg, KeyStore) {
        (ChaChaDrbg::from_u64_seed(2024), KeyStore::new([5u8; 32]))
    }

    fn all_policies() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Replication { copies: 3 },
            PolicyKind::ErasureCoded { data: 4, parity: 2 },
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
            PolicyKind::AontRs { data: 4, parity: 2 },
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
            PolicyKind::PackedShamir {
                privacy: 2,
                pack: 2,
                shares: 6,
            },
            PolicyKind::LeakageResilientShamir {
                threshold: 3,
                shares: 5,
                source_len: 32,
            },
            PolicyKind::Entropic { data: 4, parity: 2 },
        ]
    }

    #[test]
    fn registry_covers_all_nine_families() {
        let registry = CodecRegistry::global();
        assert_eq!(registry.families().len(), 9);
        let mut seen = std::collections::BTreeSet::new();
        for policy in all_policies() {
            let codec = registry.resolve(&policy);
            assert_eq!(codec.family(), registry.family_of(&policy));
            assert!(seen.insert(codec.family()), "duplicate {}", codec.family());
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn codec_metadata_matches_policy_delegation() {
        for policy in all_policies() {
            let codec = policy.codec();
            assert_eq!(codec.shard_count(), policy.shard_count(), "{policy:?}");
            assert_eq!(
                codec.read_threshold(),
                policy.read_threshold(),
                "{policy:?}"
            );
            assert!(
                (codec.expansion() - policy.expansion()).abs() < 1e-9,
                "{policy:?}"
            );
            assert_eq!(codec.at_rest_level(), policy.at_rest_level(), "{policy:?}");
            assert!(codec.validate().is_ok(), "{policy:?}");
        }
    }

    #[test]
    fn security_ordinals_span_figure1_axis() {
        let ordinal = |p: &PolicyKind| p.codec().security_ordinal();
        assert_eq!(ordinal(&PolicyKind::Replication { copies: 3 }), 0);
        assert_eq!(ordinal(&PolicyKind::ErasureCoded { data: 4, parity: 2 }), 0);
        assert_eq!(
            ordinal(&PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            }),
            1
        );
        assert_eq!(ordinal(&PolicyKind::Entropic { data: 4, parity: 2 }), 2);
        assert_eq!(
            ordinal(&PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            }),
            3
        );
        assert_eq!(
            ordinal(&PolicyKind::LeakageResilientShamir {
                threshold: 3,
                shares: 5,
                source_len: 32,
            }),
            4
        );
    }

    #[test]
    fn codec_roundtrips_through_trait_object() {
        let (mut rng, keys) = fixtures();
        let payload = b"bytes through the registry seam";
        for policy in all_policies() {
            let codec = policy.codec();
            let enc = codec.encode(&mut rng, &keys, "codec-obj", payload).unwrap();
            assert_eq!(enc.shards.len(), codec.shard_count(), "{policy:?}");
            let shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
            let dec = codec
                .decode(&keys, "codec-obj", &shards, &enc.meta)
                .unwrap();
            assert_eq!(dec, payload, "{policy:?}");
        }
    }

    #[test]
    fn rs_family_partial_repair_restores_codeword() {
        let (mut rng, keys) = fixtures();
        let policy = PolicyKind::ErasureCoded { data: 3, parity: 2 };
        let codec = policy.codec();
        let enc = codec.encode(&mut rng, &keys, "fix", b"repairable").unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        shards[1] = None;
        shards[4] = None;
        match codec.repair_chunk(&shards).unwrap() {
            CodecRepair::Rebuilt { shards, method } => {
                assert_eq!(method, RepairMethod::PartialErasure);
                assert_eq!(shards, enc.shards, "rebuilt rows differ from originals");
            }
            CodecRepair::FullReencode => panic!("RS family must repair in place"),
        }
    }

    #[test]
    fn shamir_partial_repair_rederives_same_polynomial() {
        let (mut rng, keys) = fixtures();
        let policy = PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        };
        let codec = policy.codec();
        let enc = codec.encode(&mut rng, &keys, "fix", b"same poly").unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        shards[2] = None;
        match codec.repair_chunk(&shards).unwrap() {
            CodecRepair::Rebuilt { shards, method } => {
                assert_eq!(method, RepairMethod::PartialShamir);
                assert_eq!(shards[2], enc.shards[2], "re-derived share must match");
            }
            CodecRepair::FullReencode => panic!("Shamir must repair at its evaluation point"),
        }
    }

    #[test]
    fn families_without_structure_fall_back_to_reencode() {
        for policy in [
            PolicyKind::PackedShamir {
                privacy: 2,
                pack: 2,
                shares: 6,
            },
            PolicyKind::LeakageResilientShamir {
                threshold: 3,
                shares: 5,
                source_len: 32,
            },
        ] {
            let codec = policy.codec();
            let shards = vec![None, Some(vec![1u8, 2]), Some(vec![3u8, 4])];
            assert_eq!(
                codec.repair_chunk(&shards).unwrap(),
                CodecRepair::FullReencode,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn only_cascade_supports_rewrap() {
        let (mut rng, keys) = fixtures();
        for policy in all_policies() {
            let codec = policy.codec();
            let supports = matches!(policy, PolicyKind::Cascade { .. });
            assert_eq!(
                codec.rewrapped_policy(SuiteId::ChaCha20Poly1305).is_some(),
                supports,
                "{policy:?}"
            );
            if supports {
                let enc = codec.encode(&mut rng, &keys, "rw", b"layer me").unwrap();
                let shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
                let new_shards = codec
                    .rewrap_chunk(&keys, "rw", 0, &shards, SuiteId::ChaCha20Poly1305)
                    .unwrap();
                let new_policy = codec.rewrapped_policy(SuiteId::ChaCha20Poly1305).unwrap();
                let wrapped: Vec<Option<Vec<u8>>> = new_shards.into_iter().map(Some).collect();
                let dec = new_policy
                    .codec()
                    .decode(&keys, "rw", &wrapped, &enc.meta)
                    .unwrap();
                assert_eq!(dec, b"layer me");
            }
        }
    }

    #[test]
    fn validation_matches_legacy_rules() {
        assert!(ReplicationCodec { copies: 0 }.validate().is_err());
        assert!(RsCodec { data: 0, parity: 1 }.validate().is_err());
        assert!(RsCodec {
            data: 200,
            parity: 100
        }
        .validate()
        .is_err());
        assert!(CascadeCodec {
            suites: vec![],
            data: 2,
            parity: 1
        }
        .validate()
        .is_err());
        assert!(CascadeCodec {
            suites: vec![SuiteId::OneTimePad],
            data: 2,
            parity: 1
        }
        .validate()
        .is_err());
        assert!(ShamirCodec {
            threshold: 6,
            shares: 5
        }
        .validate()
        .is_err());
        assert!(LrssCodec {
            threshold: 2,
            shares: 3,
            source_len: 0
        }
        .validate()
        .is_err());
    }
}

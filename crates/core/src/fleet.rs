//! Fleet-scale health scanning, prioritized repair, and durability
//! simulation.
//!
//! An archive fleet loses media continuously; whether objects survive
//! is a *race* between the loss rate and the repair bandwidth (Baker et
//! al.'s framing, which the paper inherits). This module supplies the
//! fleet-side machinery for running that race on the virtual clock:
//!
//! * [`FleetScan`] — a catalog-wide health inventory built from one
//!   free `keys()` sweep per node (a catalog lookup, not a media
//!   transfer), classifying every object as healthy, degraded (a
//!   [`RepairTicket`]), or lost (below its read threshold).
//! * [`RepairQueue`] — tickets ordered **most-degraded-first**
//!   ([`RepairQueueOrder::Priority`]: smallest surviving-minus-required
//!   margin, object id as the tie-break) or in catalog order
//!   ([`RepairQueueOrder::Fifo`]) for the baseline comparison.
//! * [`RepairBudget`] + [`Archive::drain_repairs`] — drains the queue
//!   under an explicit bytes-moved budget, charging reserved foreground
//!   capacity through the same [`BandwidthScheduler`] the campaign
//!   engine uses, so repair and foreground traffic share one bandwidth
//!   model.
//! * [`FleetSimConfig`] + [`Archive::run_fleet_sim`] — the durability
//!   experiment: seeded node wipes and latent shard losses per epoch,
//!   scan → queue → budgeted drain, with expected-objects-lost and
//!   time-to-first-loss in the [`FleetSimReport`].
//!
//! Fault *injection* here deliberately touches nodes directly (deleting
//! keys, as the chaos suites do): it models the adversary/environment,
//! not archive I/O, which still flows exclusively through the
//! `PlanExecutor` seam inside every repair.

use crate::archive::{Archive, ArchiveError, ObjectId};
use crate::campaign::{check_reserved_fraction, BandwidthScheduler, CampaignProgress};
use crate::codec::RepairMethod;
use crate::repair::{FleetRepairOutcome, RepairReport};
use aeon_crypto::{ChaChaDrbg, CryptoRng};
use aeon_store::clock::{SimDuration, SimTime};
use aeon_store::node::ShardKey;
use std::collections::{HashMap, HashSet};

/// One degraded object awaiting repair: how close it is to the loss
/// threshold decides its place in a [`RepairQueue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairTicket {
    /// The degraded object.
    pub id: ObjectId,
    /// Shards currently present on their placed nodes.
    pub surviving: usize,
    /// The policy's read threshold: fall below this and the object is
    /// lost.
    pub required: usize,
    /// Total shard slots in the placement.
    pub total: usize,
}

impl RepairTicket {
    /// Shards the object can still lose before it is unreadable. Zero
    /// means one more loss destroys it.
    pub fn margin(&self) -> usize {
        self.surviving.saturating_sub(self.required)
    }
}

/// Catalog-wide health inventory from one free node-metadata sweep.
///
/// Built by [`Archive::scan_fleet`] from each node's `keys()` listing —
/// the scan detects *missing* shards (wiped nodes, deleted keys), which
/// is the fleet-level loss signal; bit-rot inside surviving bytes is
/// the per-object digest check's job during repair itself. Dedup
/// manifests (block-tree objects) are skipped: their shards live under
/// shared block contexts audited by the dedup repair path.
#[derive(Debug, Clone)]
pub struct FleetScan {
    /// Objects examined (dedup manifests excluded).
    pub objects: usize,
    /// Objects with every placed shard present.
    pub healthy: usize,
    /// Degraded but repairable objects, in ascending id order.
    pub tickets: Vec<RepairTicket>,
    /// Objects below their read threshold — permanently lost, in
    /// ascending id order.
    pub lost: Vec<ObjectId>,
}

/// How a [`RepairQueue`] orders its tickets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairQueueOrder {
    /// Most-degraded-first: smallest [`RepairTicket::margin`], object
    /// id as the tie-break. Spends scarce repair bandwidth where the
    /// next loss would destroy data.
    Priority,
    /// Catalog (ascending id) order — the baseline a priority queue is
    /// measured against.
    Fifo,
}

/// A drainable queue of repair tickets.
#[derive(Debug, Clone)]
pub struct RepairQueue {
    order: RepairQueueOrder,
    tickets: Vec<RepairTicket>,
}

impl RepairQueue {
    /// An empty queue with the given discipline.
    pub fn new(order: RepairQueueOrder) -> Self {
        RepairQueue {
            order,
            tickets: Vec::new(),
        }
    }

    /// A queue seeded with a scan's tickets.
    pub fn from_scan(scan: &FleetScan, order: RepairQueueOrder) -> Self {
        let mut queue = RepairQueue::new(order);
        for t in &scan.tickets {
            queue.push(t.clone());
        }
        queue
    }

    /// The discipline in effect.
    pub fn order(&self) -> RepairQueueOrder {
        self.order
    }

    /// Adds a ticket.
    pub fn push(&mut self, ticket: RepairTicket) {
        self.tickets.push(ticket);
    }

    /// Removes and returns the next ticket under the queue's
    /// discipline, or `None` when drained.
    pub fn pop(&mut self) -> Option<RepairTicket> {
        if self.tickets.is_empty() {
            return None;
        }
        let best = match self.order {
            RepairQueueOrder::Priority => self
                .tickets
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.margin().cmp(&b.margin()).then(a.id.cmp(&b.id)))
                .map(|(i, _)| i)
                .expect("non-empty"),
            RepairQueueOrder::Fifo => self
                .tickets
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.id.cmp(&b.id))
                .map(|(i, _)| i)
                .expect("non-empty"),
        };
        Some(self.tickets.remove(best))
    }

    /// Tickets still waiting.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }
}

/// How much a repair drain may spend before yielding to foreground
/// work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairBudget {
    /// Stop draining once repairs have moved at least this many bytes
    /// (read + written). `u64::MAX` drains everything.
    pub bytes: u64,
    /// Fraction of device capacity reserved for foreground traffic,
    /// charged through [`BandwidthScheduler`] after every repaired
    /// object — the same reservation model the campaign engine uses.
    pub reserved_foreground: f64,
}

impl RepairBudget {
    /// A budget with no byte cap and no foreground reservation.
    pub fn unlimited() -> Self {
        RepairBudget {
            bytes: u64::MAX,
            reserved_foreground: 0.0,
        }
    }
}

/// Configuration for [`Archive::run_fleet_sim`]: the loss process and
/// the repair response, both on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSimConfig {
    /// Seed for the loss process DRBG (independent of the archive's
    /// encode stream).
    pub seed: u64,
    /// Epochs to simulate.
    pub epochs: usize,
    /// Virtual time per epoch.
    pub epoch: SimDuration,
    /// Per-node, per-epoch probability of a whole-node wipe (media
    /// death: every shard on the node is gone).
    pub node_wipe_prob: f64,
    /// Per-shard, per-epoch probability of a latent loss (an
    /// unreadable sector discovered at scrub time).
    pub shard_loss_prob: f64,
    /// Repair bandwidth per epoch, as a bytes-moved budget.
    pub repair_bytes_per_epoch: u64,
    /// Fraction of capacity reserved for foreground traffic during
    /// repair drains.
    pub reserved_foreground: f64,
    /// Queue discipline for the repair drain.
    pub order: RepairQueueOrder,
}

impl FleetSimConfig {
    /// A small default loss race: 12 monthly epochs, 1% node wipes,
    /// 0.5% latent shard losses, priority repair with an unlimited
    /// budget and no reservation.
    pub fn new(seed: u64) -> Self {
        FleetSimConfig {
            seed,
            epochs: 12,
            epoch: SimDuration::from_days(30),
            node_wipe_prob: 0.01,
            shard_loss_prob: 0.005,
            repair_bytes_per_epoch: u64::MAX,
            reserved_foreground: 0.0,
            order: RepairQueueOrder::Priority,
        }
    }
}

/// What a fleet durability simulation measured.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSimReport {
    /// Objects tracked by the simulation.
    pub objects: usize,
    /// Objects that fell below their read threshold at any point.
    pub objects_lost: usize,
    /// Epoch (0-based) of the first permanent loss, if any.
    pub first_loss_epoch: Option<usize>,
    /// Virtual-clock reading when the first loss was detected.
    pub first_loss_time: Option<SimTime>,
    /// Objects repaired across all epochs.
    pub repaired: usize,
    /// Repairs that failed (e.g. raced below threshold mid-epoch).
    pub repair_failures: usize,
    /// Bytes moved by repair across all epochs.
    pub bytes_moved: u64,
    /// Foreground time charged by the bandwidth scheduler across all
    /// drains.
    pub foreground_time: SimDuration,
    /// Final virtual-clock reading.
    pub elapsed: SimTime,
}

impl Archive {
    /// Scans fleet health from node metadata: one free `keys()` call
    /// per node, then catalog membership checks. See [`FleetScan`] for
    /// what the scan can and cannot see.
    pub fn scan_fleet(&self) -> FleetScan {
        let mut inventory: HashMap<aeon_store::node::NodeId, HashSet<ShardKey>> = HashMap::new();
        for node in self.cluster().nodes() {
            inventory.insert(node.id(), node.keys().into_iter().collect());
        }
        let mut scan = FleetScan {
            objects: 0,
            healthy: 0,
            tickets: Vec::new(),
            lost: Vec::new(),
        };
        for manifest in self.manifests() {
            if manifest.blocks.is_some() {
                continue;
            }
            scan.objects += 1;
            let surviving = manifest
                .placement
                .iter()
                .enumerate()
                .filter(|(shard, node_id)| {
                    inventory.get(node_id).is_some_and(|keys| {
                        keys.contains(&ShardKey::new(manifest.id.as_str(), *shard as u32))
                    })
                })
                .count();
            let required = manifest.policy.read_threshold();
            if surviving == manifest.placement.len() {
                scan.healthy += 1;
            } else if surviving < required {
                scan.lost.push(manifest.id.clone());
            } else {
                scan.tickets.push(RepairTicket {
                    id: manifest.id.clone(),
                    surviving,
                    required,
                    total: manifest.placement.len(),
                });
            }
        }
        scan
    }

    /// Drains `queue` under `budget`: pops tickets (most degraded first
    /// under [`RepairQueueOrder::Priority`]), repairs each object, and
    /// stops once the bytes-moved budget is spent — remaining tickets
    /// stay queued for the next cycle. After every repaired object the
    /// drain charges the reserved foreground fraction through
    /// [`BandwidthScheduler`], so on media-priced clusters repair
    /// competes with foreground traffic for the same virtual bandwidth.
    /// Returns the per-object outcomes plus the foreground time
    /// charged.
    pub fn drain_repairs(
        &mut self,
        queue: &mut RepairQueue,
        budget: &RepairBudget,
    ) -> (FleetRepairOutcome, SimDuration) {
        let mut scheduler =
            BandwidthScheduler::new(self.cluster().clock().clone(), budget.reserved_foreground);
        let mut outcome = FleetRepairOutcome {
            repaired: Vec::new(),
            failed: Vec::new(),
            healthy: 0,
        };
        let mut spent = 0u64;
        while spent < budget.bytes {
            let Some(ticket) = queue.pop() else { break };
            // Batched plan execution: the rebuilt shards' first write
            // attempts coalesce per target node.
            match self.repair_object_batched(&ticket.id) {
                Ok(report) if report.method == RepairMethod::NotNeeded => outcome.healthy += 1,
                Ok(report) => {
                    spent = spent.saturating_add(report.bytes_moved());
                    outcome.repaired.push((ticket.id, report));
                }
                Err(e) => outcome.failed.push((ticket.id, e)),
            }
            scheduler.reserve_foreground();
        }
        (outcome, scheduler.foreground_total())
    }

    /// Runs the fleet durability race: per epoch, inject seeded node
    /// wipes and latent shard losses, advance the virtual clock, scan,
    /// and drain repairs under the configured budget and discipline.
    /// Deterministic in `(archive seed, cfg.seed)`; the report is the
    /// durability measurement (`objects_lost`, time-to-first-loss) the
    /// `exp_fleet` experiment sweeps.
    pub fn run_fleet_sim(&mut self, cfg: &FleetSimConfig) -> FleetSimReport {
        let clock = self.cluster().clock().clone();
        let start = clock.now();
        let mut lost: HashSet<ObjectId> = HashSet::new();
        let mut report = FleetSimReport {
            objects: self.scan_fleet().objects,
            objects_lost: 0,
            first_loss_epoch: None,
            first_loss_time: None,
            repaired: 0,
            repair_failures: 0,
            bytes_moved: 0,
            foreground_time: SimDuration::ZERO,
            elapsed: start,
        };
        for epoch in 0..cfg.epochs {
            // The loss process: a fresh DRBG per epoch keyed off the
            // config seed, so epochs are independent and the whole run
            // replays bit-for-bit.
            let mut rng = ChaChaDrbg::from_u64_seed(cfg.seed.wrapping_add(epoch as u64));
            self.inject_epoch_losses(cfg, &mut rng);
            clock.advance_to(start + cfg.epoch.mul_f64((epoch + 1) as f64));

            let scan = self.scan_fleet();
            for id in &scan.lost {
                if lost.insert(id.clone()) && report.first_loss_epoch.is_none() {
                    report.first_loss_epoch = Some(epoch);
                    report.first_loss_time = Some(clock.now());
                }
            }
            let mut queue = RepairQueue::from_scan(&scan, cfg.order);
            let budget = RepairBudget {
                bytes: cfg.repair_bytes_per_epoch,
                reserved_foreground: cfg.reserved_foreground,
            };
            let (outcome, foreground) = self.drain_repairs(&mut queue, &budget);
            report.repaired += outcome.repaired.len();
            report.repair_failures += outcome.failed.len();
            report.bytes_moved += outcome.bytes_moved();
            report.foreground_time += foreground;
        }
        report.objects_lost = lost.len();
        report.elapsed = clock.now();
        report
    }

    /// One epoch of the loss process: whole-node wipes first, then
    /// latent per-shard losses on what remains. Environment-side fault
    /// injection — node I/O on the archive's behalf still goes through
    /// the executor seam.
    fn inject_epoch_losses<R: CryptoRng + ?Sized>(&self, cfg: &FleetSimConfig, rng: &mut R) {
        const SCALE: u64 = 1_000_000;
        let wipe = (cfg.node_wipe_prob.clamp(0.0, 1.0) * SCALE as f64) as u64;
        let latent = (cfg.shard_loss_prob.clamp(0.0, 1.0) * SCALE as f64) as u64;
        for node in self.cluster().nodes() {
            // `keys()` order is implementation-defined (hash maps);
            // sort so each key's probability draw is reproducible.
            let mut keys = node.keys();
            keys.sort_by(|a, b| a.object.cmp(&b.object).then(a.shard.cmp(&b.shard)));
            if wipe > 0 && rng.gen_range(SCALE) < wipe {
                for key in keys {
                    let _ = node.delete(&key);
                }
                continue;
            }
            if latent == 0 {
                continue;
            }
            for key in keys {
                if rng.gen_range(SCALE) < latent {
                    let _ = node.delete(&key);
                }
            }
        }
    }
}

/// A fleet repair campaign broken into single-object steps, for
/// interleaving with live foreground traffic — the repair analog of
/// [`crate::ReencodeCampaignDriver`]. Construction scans the fleet and
/// enqueues every repairable ticket under the chosen queue discipline;
/// each [`step`](Self::step) repairs one object through the batched
/// plan path (occupying the shared device for some background interval
/// `Δ` on the cluster clock), then marks the driver ineligible until
/// `now + Δ·r/(1−r)` — the reserved-foreground window in which the
/// request engine serves real traffic instead of a synthetic charge.
#[derive(Debug)]
pub struct RepairCampaignDriver {
    queue: RepairQueue,
    reserved_fraction: f64,
    fg_factor: f64,
    next_eligible: SimTime,
    objects_total: usize,
    objects_done: usize,
    already_healthy: usize,
    bytes_read: u64,
    bytes_written: u64,
    background_time: SimDuration,
}

impl RepairCampaignDriver {
    /// Plans a repair campaign over every currently-degraded object,
    /// throttled so each background step is followed by a `Δ·r/(1−r)`
    /// window reserved for foreground work. The driver is eligible
    /// immediately.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= reserved_fraction <= `[`crate::MAX_RESERVED_FRACTION`]
    /// (same contract as [`BandwidthScheduler::new`]).
    pub fn new(archive: &Archive, order: RepairQueueOrder, reserved_fraction: f64) -> Self {
        check_reserved_fraction(reserved_fraction);
        let queue = RepairQueue::from_scan(&archive.scan_fleet(), order);
        RepairCampaignDriver {
            objects_total: queue.len(),
            queue,
            reserved_fraction,
            fg_factor: reserved_fraction / (1.0 - reserved_fraction),
            next_eligible: SimTime::ZERO,
            objects_done: 0,
            already_healthy: 0,
            bytes_read: 0,
            bytes_written: 0,
            background_time: SimDuration::ZERO,
        }
    }

    /// Whether every ticket has been drained.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.queue.is_empty()
    }

    /// The earliest instant the next background step may start — the
    /// end of the reserved-foreground window opened by the previous
    /// step.
    #[must_use]
    pub fn next_eligible(&self) -> SimTime {
        self.next_eligible
    }

    /// The reserved fraction in effect.
    #[must_use]
    pub fn reserved_fraction(&self) -> f64 {
        self.reserved_fraction
    }

    /// Tickets that turned out to already be healthy when their repair
    /// ran (someone else fixed them, or the scan raced a write).
    #[must_use]
    pub fn already_healthy(&self) -> usize {
        self.already_healthy
    }

    /// Repairs the next queued object through the batched plan path,
    /// occupying the device for the step's duration, and opens the
    /// following reserved-foreground window. Returns `None` when the
    /// queue is empty.
    ///
    /// # Errors
    ///
    /// Propagates the per-object failure; the ticket is consumed (a
    /// fleet campaign does not retry a failed repair in place).
    pub fn step(&mut self, archive: &mut Archive) -> Result<Option<RepairReport>, ArchiveError> {
        let Some(ticket) = self.queue.pop() else {
            return Ok(None);
        };
        let clock = archive.cluster().clock().clone();
        let start = clock.now();
        let report = archive.repair_object_batched(&ticket.id)?;
        let end = clock.now();
        let background = end - start;
        self.next_eligible = end + background.mul_f64(self.fg_factor);
        self.objects_done += 1;
        if report.method == RepairMethod::NotNeeded {
            self.already_healthy += 1;
        }
        self.bytes_read += report.bytes_read;
        self.bytes_written += report.bytes_written;
        self.background_time += background;
        Ok(Some(report))
    }

    /// Where the campaign stands, in the same shape the re-encode
    /// driver reports so request engines can surface either uniformly.
    #[must_use]
    pub fn progress(&self) -> CampaignProgress {
        CampaignProgress {
            objects_done: self.objects_done,
            objects_total: self.objects_total,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            background_time: self.background_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchiveConfig, PolicyKind};
    use aeon_store::node::{MemoryNode, StorageNode};
    use aeon_store::Cluster;
    use std::sync::Arc;

    fn archive_with_handles(n: usize) -> (Archive, Vec<MemoryNode>) {
        let handles: Vec<MemoryNode> = (0..n as u32)
            .map(|i| MemoryNode::new(i, format!("site-{i}")))
            .collect();
        let cluster = Cluster::new(
            handles
                .iter()
                .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
                .collect(),
        );
        let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 2, parity: 2 });
        (Archive::with_cluster(config, cluster).unwrap(), handles)
    }

    fn delete_shard(handles: &[MemoryNode], archive: &Archive, id: &ObjectId, shard: usize) {
        let manifest = archive.manifest(id).unwrap();
        let node = handles
            .iter()
            .find(|h| h.id() == manifest.placement[shard])
            .unwrap();
        node.delete(&ShardKey::new(id.as_str(), shard as u32))
            .unwrap();
    }

    #[test]
    fn scan_classifies_healthy_degraded_lost() {
        let (mut archive, handles) = archive_with_handles(4);
        let a = archive.ingest(b"healthy", "a").unwrap();
        let b = archive.ingest(b"degraded", "b").unwrap();
        let c = archive.ingest(b"lost", "c").unwrap();
        delete_shard(&handles, &archive, &b, 1);
        for shard in 0..3 {
            delete_shard(&handles, &archive, &c, shard);
        }
        let scan = archive.scan_fleet();
        assert_eq!(scan.objects, 3);
        assert_eq!(scan.healthy, 1);
        assert_eq!(scan.tickets.len(), 1);
        assert_eq!(scan.tickets[0].id, b);
        assert_eq!(scan.tickets[0].surviving, 3);
        assert_eq!(scan.tickets[0].required, 2);
        assert_eq!(scan.tickets[0].margin(), 1);
        assert_eq!(scan.lost, vec![c]);
        let _ = a;
    }

    #[test]
    fn priority_queue_pops_most_degraded_first() {
        let ticket = |id: &str, surviving: usize| RepairTicket {
            id: ObjectId::from_raw(id.to_string()),
            surviving,
            required: 2,
            total: 4,
        };
        let mut q = RepairQueue::new(RepairQueueOrder::Priority);
        q.push(ticket("bbb", 3));
        q.push(ticket("aaa", 3));
        q.push(ticket("zzz", 2));
        assert_eq!(q.pop().unwrap().id.as_str(), "zzz", "margin 0 first");
        assert_eq!(q.pop().unwrap().id.as_str(), "aaa", "then id tie-break");
        assert_eq!(q.pop().unwrap().id.as_str(), "bbb");
        assert!(q.pop().is_none());

        let mut q = RepairQueue::new(RepairQueueOrder::Fifo);
        q.push(ticket("bbb", 3));
        q.push(ticket("aaa", 3));
        q.push(ticket("zzz", 2));
        assert_eq!(q.pop().unwrap().id.as_str(), "aaa", "fifo = id order");
        assert_eq!(q.pop().unwrap().id.as_str(), "bbb");
        assert_eq!(q.pop().unwrap().id.as_str(), "zzz");
    }

    #[test]
    fn drain_respects_byte_budget() {
        let (mut archive, handles) = archive_with_handles(4);
        let ids: Vec<ObjectId> = (0..4)
            .map(|i| archive.ingest(&[7u8; 256], &format!("o{i}")).unwrap())
            .collect();
        for id in &ids {
            delete_shard(&handles, &archive, id, 0);
        }
        let scan = archive.scan_fleet();
        assert_eq!(scan.tickets.len(), 4);
        let mut queue = RepairQueue::from_scan(&scan, RepairQueueOrder::Priority);
        let budget = RepairBudget {
            bytes: 1, // exhausted after the first repair
            reserved_foreground: 0.0,
        };
        let (outcome, _fg) = archive.drain_repairs(&mut queue, &budget);
        assert_eq!(outcome.repaired.len(), 1);
        assert_eq!(queue.len(), 3, "unrepaired tickets stay queued");
        let (outcome, _fg) = archive.drain_repairs(&mut queue, &RepairBudget::unlimited());
        assert_eq!(outcome.repaired.len(), 3);
        assert!(queue.is_empty());
        assert!(archive.scan_fleet().tickets.is_empty());
    }

    #[test]
    fn priority_saves_fragile_objects_fifo_loses() {
        // Two identical archives, same damage: two objects at margin 0
        // (ids sorting *last*, so FIFO reaches them last) and several at
        // margin 1. Budget covers roughly the two most-fragile repairs.
        // After a second loss wave hits every still-degraded object,
        // priority has rescued the margin-0 objects; FIFO spent its
        // budget on safe ones and loses data.
        let build = || {
            let (mut archive, handles) = archive_with_handles(4);
            let ids: Vec<ObjectId> = (0..6)
                .map(|i| archive.ingest(&[3u8; 512], &format!("o{i}")).unwrap())
                .collect();
            (archive, handles, ids)
        };
        let damage = |archive: &Archive, handles: &[MemoryNode], ids: &[ObjectId]| {
            let mut sorted = ids.to_vec();
            sorted.sort();
            // The two ids FIFO reaches last become the fragile ones.
            for id in &sorted[4..] {
                delete_shard(handles, archive, id, 0);
                delete_shard(handles, archive, id, 1);
            }
            for id in &sorted[..4] {
                delete_shard(handles, archive, id, 0);
            }
        };
        let run = |order: RepairQueueOrder| {
            let (mut archive, handles, ids) = build();
            damage(&archive, &handles, &ids);
            // Budget: two margin-0 repairs move ~2 reads + 2 writes of a
            // 4-shard object each; measure one repair to calibrate.
            let scan = archive.scan_fleet();
            let mut queue = RepairQueue::from_scan(&scan, order);
            let probe = queue.pop().unwrap();
            let probe_report = archive.repair_object(&probe.id).unwrap();
            let budget = RepairBudget {
                bytes: probe_report.bytes_moved(),
                reserved_foreground: 0.0,
            };
            let (_outcome, _fg) = archive.drain_repairs(&mut queue, &budget);
            // Second loss wave: one more shard off every still-degraded
            // object.
            for ticket in archive.scan_fleet().tickets {
                let manifest = archive.manifest(&ticket.id).unwrap();
                for shard in 0..manifest.placement.len() {
                    let node = handles
                        .iter()
                        .find(|h| h.id() == manifest.placement[shard])
                        .unwrap();
                    if node
                        .get(&ShardKey::new(ticket.id.as_str(), shard as u32))
                        .is_ok()
                    {
                        node.delete(&ShardKey::new(ticket.id.as_str(), shard as u32))
                            .unwrap();
                        break;
                    }
                }
            }
            archive.scan_fleet().lost.len()
        };
        let priority_lost = run(RepairQueueOrder::Priority);
        let fifo_lost = run(RepairQueueOrder::Fifo);
        assert!(
            priority_lost < fifo_lost,
            "most-degraded-first must lose fewer objects at the same budget \
             (priority {priority_lost} vs fifo {fifo_lost})"
        );
        assert_eq!(priority_lost, 0, "priority rescued every margin-0 object");
    }

    #[test]
    fn fleet_sim_is_deterministic_and_tracks_losses() {
        let run = || {
            let (mut archive, _handles) = archive_with_handles(6);
            for i in 0..8 {
                archive.ingest(&[i as u8; 128], &format!("o{i}")).unwrap();
            }
            let cfg = FleetSimConfig {
                seed: 42,
                epochs: 6,
                epoch: SimDuration::from_days(30),
                node_wipe_prob: 0.3,
                shard_loss_prob: 0.05,
                repair_bytes_per_epoch: 2_000,
                reserved_foreground: 0.1,
                order: RepairQueueOrder::Priority,
            };
            archive.run_fleet_sim(&cfg)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seeds, same report");
        assert_eq!(a.objects, 8);
        assert!(a.elapsed.as_days_f64() >= 180.0 - 1e-9);
        if a.objects_lost > 0 {
            assert!(a.first_loss_epoch.is_some());
            assert!(a.first_loss_time.is_some());
        }
    }

    #[test]
    fn unlimited_repair_keeps_everything_alive_under_latent_losses() {
        // Latent single-shard losses per epoch with unlimited repair
        // bandwidth: margin-2 objects never accumulate enough damage to
        // die between scans.
        let (mut archive, _handles) = archive_with_handles(6);
        for i in 0..6 {
            archive.ingest(&[9u8; 64], &format!("o{i}")).unwrap();
        }
        let cfg = FleetSimConfig {
            seed: 7,
            epochs: 12,
            epoch: SimDuration::from_days(30),
            node_wipe_prob: 0.0,
            shard_loss_prob: 0.08,
            repair_bytes_per_epoch: u64::MAX,
            reserved_foreground: 0.0,
            order: RepairQueueOrder::Priority,
        };
        let report = archive.run_fleet_sim(&cfg);
        assert_eq!(report.objects_lost, 0);
        assert!(report.repaired > 0, "losses occurred and were repaired");
    }

    #[test]
    fn repair_campaign_driver_drains_most_degraded_first() {
        let (mut archive, handles) = archive_with_handles(4);
        let ids: Vec<ObjectId> = (0..3)
            .map(|i| {
                archive
                    .ingest(&[i as u8 + 1; 96], &format!("o{i}"))
                    .unwrap()
            })
            .collect();
        // o1 loses two shards (margin 0), o0 loses one (margin 1).
        delete_shard(&handles, &archive, &ids[0], 0);
        delete_shard(&handles, &archive, &ids[1], 1);
        delete_shard(&handles, &archive, &ids[1], 3);

        let mut driver = RepairCampaignDriver::new(&archive, RepairQueueOrder::Priority, 0.25);
        assert_eq!(driver.progress().objects_total, 2);
        assert!(!driver.is_done());

        // Most degraded first: o1, then o0.
        driver.step(&mut archive).unwrap().unwrap();
        assert_eq!(archive.scan_fleet().tickets.len(), 1);
        assert_eq!(archive.scan_fleet().tickets[0].id, ids[0]);
        driver.step(&mut archive).unwrap().unwrap();
        assert!(driver.is_done());
        assert!(driver.step(&mut archive).unwrap().is_none());

        let progress = driver.progress();
        assert_eq!(progress.objects_done, 2);
        assert!(progress.bytes_written > 0);
        assert_eq!(driver.already_healthy(), 0);
        let scan = archive.scan_fleet();
        assert_eq!(scan.healthy, 3);
        assert!(scan.tickets.is_empty() && scan.lost.is_empty());
    }

    #[test]
    fn repair_campaign_driver_opens_reserved_windows_on_priced_media() {
        use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};
        let profile =
            ThroughputProfile::new(SimDuration::from_millis(5), 10_000_000.0, 10_000_000.0);
        let (cluster, clock) = throughput_in_memory_cluster(&["a", "b", "c", "d"], 1, &profile);
        let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 2, parity: 2 });
        let mut archive = Archive::with_cluster(config, cluster).unwrap();
        let id = archive.ingest(&[7u8; 4096], "w").unwrap();
        let placement = archive.manifest(&id).unwrap().placement;
        let node = archive.cluster().node(placement[2]).unwrap();
        node.delete(&ShardKey::new(id.as_str(), 2)).unwrap();

        let r = 0.5;
        let mut driver = RepairCampaignDriver::new(&archive, RepairQueueOrder::Priority, r);
        assert_eq!(driver.next_eligible(), SimTime::ZERO);
        let before = clock.now();
        driver.step(&mut archive).unwrap().unwrap();
        let background = clock.now() - before;
        assert!(background > SimDuration::ZERO, "priced media charges time");
        // r = 0.5 reserves a window exactly as long as the step.
        assert_eq!(driver.next_eligible(), clock.now() + background);
        assert!(driver.is_done());
    }
}

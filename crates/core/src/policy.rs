//! Encoding policies: every data-at-rest design point from the paper's
//! Figure 1 and Table 1, behind one interface.
//!
//! [`PolicyKind`] is the *value* naming a design point and its
//! parameters; the per-family behavior (validation, shard geometry,
//! encode/decode, repair, re-wrap) lives in [`crate::codec`], and every
//! method here delegates to the family's [`Codec`] through the global
//! [`CodecRegistry`]. What remains local is the harvest-now-
//! decrypt-later adversary model, which spans families by construction.

use crate::aont::{AontHndlOutcome, AontRs};
use crate::codec::{Codec, CodecRegistry};
use crate::keys::KeyStore;
use aeon_adversary::CryptanalyticTimeline;
use aeon_crypto::{CryptoRng, SecurityLevel, SuiteId};
use aeon_secretshare::packed::PackedParams;

/// Errors from policy encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// Policy parameters are invalid.
    InvalidPolicy(String),
    /// Not enough shards survive to decode.
    TooFewShards {
        /// Shards available.
        available: usize,
        /// Shards required.
        required: usize,
    },
    /// Decryption or authentication failed.
    CryptoFailure(String),
    /// Shards or metadata are malformed.
    Malformed(String),
}

impl core::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PolicyError::InvalidPolicy(why) => write!(f, "invalid policy: {why}"),
            PolicyError::TooFewShards {
                available,
                required,
            } => {
                write!(f, "too few shards: {available} of {required}")
            }
            PolicyError::CryptoFailure(why) => write!(f, "crypto failure: {why}"),
            PolicyError::Malformed(why) => write!(f, "malformed data: {why}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// A data-at-rest encoding policy.
///
/// Each variant is one of the design points the paper surveys; see the
/// per-variant docs for where it sits on the Figure 1 cost/security map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyKind {
    /// Plain `n`-way replication: no confidentiality, maximal simplicity.
    Replication {
        /// Number of copies.
        copies: usize,
    },
    /// Systematic Reed–Solomon `[data + parity, data]`: availability at
    /// `n/k` cost, still no confidentiality.
    ErasureCoded {
        /// Data shards.
        data: usize,
        /// Parity shards.
        parity: usize,
    },
    /// Encrypt-then-erasure-code under a single suite (the commercial
    /// cloud default: AES + EC).
    Encrypted {
        /// The AEAD suite.
        suite: SuiteId,
        /// Data shards.
        data: usize,
        /// Parity shards.
        parity: usize,
    },
    /// Cascade (robust combiner) of several suites, then erasure code —
    /// the ArchiveSafeLT design.
    Cascade {
        /// Suites in application order.
        suites: Vec<SuiteId>,
        /// Data shards.
        data: usize,
        /// Parity shards.
        parity: usize,
    },
    /// AONT-RS dispersal (Cleversafe): keyless, computational.
    AontRs {
        /// Threshold shards.
        data: usize,
        /// Parity shards.
        parity: usize,
    },
    /// Shamir `t`-of-`n`: information-theoretic at `n×` cost (POTSHARDS).
    Shamir {
        /// Reconstruction threshold.
        threshold: usize,
        /// Share count.
        shares: usize,
    },
    /// Packed secret sharing: ITS below `privacy` shares at `n/k` cost.
    PackedShamir {
        /// Privacy threshold.
        privacy: usize,
        /// Secrets per polynomial.
        pack: usize,
        /// Share count.
        shares: usize,
    },
    /// Shamir wrapped by the leakage-resilient compiler.
    LeakageResilientShamir {
        /// Reconstruction threshold.
        threshold: usize,
        /// Share count.
        shares: usize,
        /// Extractor source length per share, bytes.
        source_len: usize,
    },
    /// Entropically secure encryption then erasure coding: ITS for
    /// high-entropy payloads at erasure-coding cost.
    Entropic {
        /// Data shards.
        data: usize,
        /// Parity shards.
        parity: usize,
    },
}

/// Per-object metadata produced at encode time and needed at decode time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodingMeta {
    /// Master-key version used for key derivation (encrypted policies).
    pub key_version: u32,
    /// Packed-sharing parameters and true payload length.
    pub packed: Option<(PackedParams, usize)>,
    /// Entropic cipher public nonce.
    pub entropic_nonce: Option<[u8; 16]>,
    /// Present when the object went through the chunked pipeline
    /// ([`crate::pipeline`]); holds per-chunk decode metadata.
    pub chunked: Option<crate::pipeline::ChunkedMeta>,
}

impl EncodingMeta {
    pub(crate) fn plain(key_version: u32) -> Self {
        EncodingMeta {
            key_version,
            packed: None,
            entropic_nonce: None,
            chunked: None,
        }
    }
}

/// The product of encoding an object.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// One blob per storage node.
    pub shards: Vec<Vec<u8>>,
    /// Metadata required for decode.
    pub meta: EncodingMeta,
}

/// What an adversary recovered from harvested material.
#[derive(Debug, Clone, PartialEq)]
pub enum Recovery {
    /// Full plaintext.
    Full(Vec<u8>),
    /// An estimated fraction of the plaintext.
    Partial(f64),
    /// Nothing.
    Nothing,
}

/// Forwards a generic rng as an object-safe one. Like [`ChaChaDrbg`]
/// (`aeon_crypto::ChaChaDrbg`), it overrides only
/// [`CryptoRng::fill_bytes`], so every derived draw (`next_u64`,
/// `gen_range`, array fills) consumes the identical byte stream on both
/// sides of the adapter.
struct DynRng<'a, R: CryptoRng + ?Sized>(&'a mut R);

impl<R: CryptoRng + ?Sized> CryptoRng for DynRng<'_, R> {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

impl PolicyKind {
    /// Builds this policy's family [`Codec`] from the global
    /// [`CodecRegistry`]. All other methods on `PolicyKind` are
    /// conveniences over this.
    pub fn codec(&self) -> Box<dyn Codec> {
        CodecRegistry::global().resolve(self)
    }

    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidPolicy`] describing the violation.
    pub fn validate(&self) -> Result<(), PolicyError> {
        self.codec().validate()
    }

    /// Number of shards this policy produces per object.
    pub fn shard_count(&self) -> usize {
        self.codec().shard_count()
    }

    /// Minimum shards needed to read an object back.
    pub fn read_threshold(&self) -> usize {
        self.codec().read_threshold()
    }

    /// Analytic storage expansion (stored bytes / payload bytes, ignoring
    /// constant overheads).
    pub fn expansion(&self) -> f64 {
        self.codec().expansion()
    }

    /// The at-rest confidentiality classification against a
    /// *sub-threshold* adversary (fewer shards than the read threshold) —
    /// the sense in which the paper's Table 1 grades "Confidentiality: At
    /// Rest".
    pub fn at_rest_level(&self) -> SecurityLevel {
        self.codec().at_rest_level()
    }

    /// Encodes a payload into shards.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] variants on invalid parameters or internal
    /// failures.
    pub fn encode<R: CryptoRng + ?Sized>(
        &self,
        rng: &mut R,
        keys: &KeyStore,
        object_id: &str,
        payload: &[u8],
    ) -> Result<Encoded, PolicyError> {
        self.validate()?;
        let mut rng = DynRng(rng);
        self.codec().encode(&mut rng, keys, object_id, payload)
    }

    /// Decodes an object from surviving shards.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::TooFewShards`] or decode failures.
    pub fn decode(
        &self,
        keys: &KeyStore,
        object_id: &str,
        shards: &[Option<Vec<u8>>],
        meta: &EncodingMeta,
    ) -> Result<Vec<u8>, PolicyError> {
        self.codec().decode(keys, object_id, shards, meta)
    }

    /// Models what a harvest-now-decrypt-later adversary recovers at
    /// `year`, given it stole the shards marked `Some` (plus all public
    /// metadata) and the timeline's cryptanalytic progress. Key material
    /// is assumed *not* stolen — pure HNDL. The `keys` store stands in
    /// for the cryptanalysis itself: when the timeline says a suite is
    /// broken, the model decrypts with the true key, which is exactly
    /// what a real break would permit.
    pub fn hndl_recover(
        &self,
        keys: &KeyStore,
        object_id: &str,
        stolen: &[Option<Vec<u8>>],
        meta: &EncodingMeta,
        timeline: &CryptanalyticTimeline,
        year: u32,
    ) -> Recovery {
        let have = stolen.iter().flatten().count();
        if have == 0 {
            return Recovery::Nothing;
        }
        match self {
            PolicyKind::Replication { .. } | PolicyKind::ErasureCoded { .. } => {
                // Plaintext encodings: anything stolen is recovered. For
                // systematic EC, sub-threshold hauls expose the stolen
                // data shards directly.
                match self.decode(keys, object_id, stolen, meta) {
                    Ok(pt) => Recovery::Full(pt),
                    Err(_) => {
                        let data = self.read_threshold();
                        let data_stolen = stolen.iter().take(data).flatten().count();
                        if data_stolen > 0 {
                            Recovery::Partial(data_stolen as f64 / data as f64)
                        } else {
                            Recovery::Nothing
                        }
                    }
                }
            }
            PolicyKind::Encrypted { suite, data, .. } => {
                if !timeline.ciphers().is_broken(*suite, year) {
                    return Recovery::Nothing;
                }
                match self.decode(keys, object_id, stolen, meta) {
                    Ok(pt) => Recovery::Full(pt),
                    Err(_) => {
                        let data_stolen = stolen.iter().take(*data).flatten().count();
                        if data_stolen > 0 {
                            Recovery::Partial(data_stolen as f64 / *data as f64)
                        } else {
                            Recovery::Nothing
                        }
                    }
                }
            }
            PolicyKind::Cascade { suites, data, .. } => {
                let all_broken = suites
                    .iter()
                    .all(|s| timeline.ciphers().is_broken(*s, year));
                if !all_broken {
                    return Recovery::Nothing;
                }
                match self.decode(keys, object_id, stolen, meta) {
                    Ok(pt) => Recovery::Full(pt),
                    Err(_) => {
                        let data_stolen = stolen.iter().take(*data).flatten().count();
                        if data_stolen > 0 {
                            Recovery::Partial(data_stolen as f64 / *data as f64)
                        } else {
                            Recovery::Nothing
                        }
                    }
                }
            }
            PolicyKind::AontRs { data, parity } => {
                let codec = match AontRs::new(*data, *parity) {
                    Ok(c) => c,
                    Err(_) => return Recovery::Nothing,
                };
                let broken = timeline.ciphers().is_broken(SuiteId::Aes256CtrHmac, year);
                match codec.simulate_hndl(stolen, broken) {
                    AontHndlOutcome::FullPlaintext(pt) => Recovery::Full(pt),
                    AontHndlOutcome::PartialPlaintext { fraction } => Recovery::Partial(fraction),
                    AontHndlOutcome::Nothing => Recovery::Nothing,
                }
            }
            PolicyKind::Shamir { threshold, .. } => {
                if have >= *threshold {
                    match self.decode(keys, object_id, stolen, meta) {
                        Ok(pt) => Recovery::Full(pt),
                        Err(_) => Recovery::Nothing,
                    }
                } else {
                    Recovery::Nothing
                }
            }
            PolicyKind::LeakageResilientShamir { threshold, .. } => {
                if have >= *threshold {
                    match self.decode(keys, object_id, stolen, meta) {
                        Ok(pt) => Recovery::Full(pt),
                        Err(_) => Recovery::Nothing,
                    }
                } else {
                    Recovery::Nothing
                }
            }
            PolicyKind::PackedShamir { privacy, pack, .. } => {
                if have >= privacy + pack {
                    match self.decode(keys, object_id, stolen, meta) {
                        Ok(pt) => Recovery::Full(pt),
                        Err(_) => Recovery::Nothing,
                    }
                } else if have > *privacy {
                    // Between t and t+k shares: the adversary pins the
                    // secrets to a shrinking affine subspace — model as a
                    // proportional partial leak.
                    Recovery::Partial((have - privacy) as f64 / *pack as f64)
                } else {
                    Recovery::Nothing
                }
            }
            PolicyKind::Entropic { .. } => {
                // ITS for high-entropy payloads: the δ-biased pad never
                // "breaks"; the archive enforces the entropy precondition
                // at ingest.
                Recovery::Nothing
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn fixtures() -> (ChaChaDrbg, KeyStore) {
        (ChaChaDrbg::from_u64_seed(2024), KeyStore::new([5u8; 32]))
    }

    fn all_policies() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Replication { copies: 3 },
            PolicyKind::ErasureCoded { data: 4, parity: 2 },
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
            PolicyKind::AontRs { data: 4, parity: 2 },
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
            PolicyKind::PackedShamir {
                privacy: 2,
                pack: 2,
                shares: 6,
            },
            PolicyKind::LeakageResilientShamir {
                threshold: 3,
                shares: 5,
                source_len: 32,
            },
            PolicyKind::Entropic { data: 4, parity: 2 },
        ]
    }

    #[test]
    fn every_policy_roundtrips() {
        let (mut rng, keys) = fixtures();
        let payload = b"the archived object payload, long enough to stripe";
        for policy in all_policies() {
            let enc = policy.encode(&mut rng, &keys, "obj-1", payload).unwrap();
            assert_eq!(enc.shards.len(), policy.shard_count(), "{policy:?}");
            let shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
            let dec = policy.decode(&keys, "obj-1", &shards, &enc.meta).unwrap();
            assert_eq!(dec, payload, "{policy:?}");
        }
    }

    #[test]
    fn every_policy_survives_maximum_loss() {
        let (mut rng, keys) = fixtures();
        let payload: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
        for policy in all_policies() {
            let enc = policy.encode(&mut rng, &keys, "obj-2", &payload).unwrap();
            let n = policy.shard_count();
            let t = policy.read_threshold();
            let mut shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
            // Drop the first n - t shards.
            for s in shards.iter_mut().take(n - t) {
                *s = None;
            }
            let dec = policy.decode(&keys, "obj-2", &shards, &enc.meta).unwrap();
            assert_eq!(dec, payload, "{policy:?}");
        }
    }

    #[test]
    fn every_policy_fails_below_threshold() {
        let (mut rng, keys) = fixtures();
        let payload = b"below threshold";
        for policy in all_policies() {
            if policy.read_threshold() == 1 {
                continue; // replication can't go below threshold non-trivially
            }
            let enc = policy.encode(&mut rng, &keys, "obj-3", payload).unwrap();
            let t = policy.read_threshold();
            let mut shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
            // Keep only t - 1 shards.
            let mut kept = 0;
            for s in shards.iter_mut() {
                if s.is_some() {
                    if kept >= t - 1 {
                        *s = None;
                    } else {
                        kept += 1;
                    }
                }
            }
            assert!(
                policy.decode(&keys, "obj-3", &shards, &enc.meta).is_err(),
                "{policy:?} decoded below threshold"
            );
        }
    }

    #[test]
    fn wrong_object_id_fails_for_authenticated_policies() {
        let (mut rng, keys) = fixtures();
        let policy = PolicyKind::Encrypted {
            suite: SuiteId::ChaCha20Poly1305,
            data: 2,
            parity: 1,
        };
        let enc = policy.encode(&mut rng, &keys, "obj-A", b"bound").unwrap();
        let shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        assert!(policy.decode(&keys, "obj-B", &shards, &enc.meta).is_err());
    }

    #[test]
    fn key_rotation_keeps_old_objects_readable() {
        let (mut rng, mut keys) = fixtures();
        let policy = PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 2,
            parity: 1,
        };
        let enc = policy
            .encode(&mut rng, &keys, "obj", b"pre-rotation")
            .unwrap();
        keys.rotate([99u8; 32]);
        let shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        // meta.key_version pins the old master.
        assert_eq!(
            policy.decode(&keys, "obj", &shards, &enc.meta).unwrap(),
            b"pre-rotation"
        );
    }

    #[test]
    fn at_rest_levels_match_table1() {
        use SecurityLevel::*;
        let expect = [
            (PolicyKind::Replication { copies: 3 }, None),
            (PolicyKind::ErasureCoded { data: 4, parity: 2 }, None),
            (
                PolicyKind::Encrypted {
                    suite: SuiteId::Aes256CtrHmac,
                    data: 4,
                    parity: 2,
                },
                Computational,
            ),
            (PolicyKind::AontRs { data: 4, parity: 2 }, Computational),
            (
                PolicyKind::Shamir {
                    threshold: 3,
                    shares: 5,
                },
                InformationTheoretic,
            ),
            (PolicyKind::Entropic { data: 4, parity: 2 }, EntropicIts),
        ];
        for (policy, level) in expect {
            assert_eq!(policy.at_rest_level(), level, "{policy:?}");
        }
    }

    #[test]
    fn expansions() {
        assert!((PolicyKind::Replication { copies: 3 }.expansion() - 3.0).abs() < 1e-9);
        assert!((PolicyKind::ErasureCoded { data: 4, parity: 2 }.expansion() - 1.5).abs() < 1e-9);
        assert!(
            (PolicyKind::Shamir {
                threshold: 3,
                shares: 5
            }
            .expansion()
                - 5.0)
                .abs()
                < 1e-9
        );
        assert!(
            (PolicyKind::PackedShamir {
                privacy: 2,
                pack: 4,
                shares: 12
            }
            .expansion()
                - 3.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(PolicyKind::Replication { copies: 0 }.validate().is_err());
        assert!(PolicyKind::ErasureCoded { data: 0, parity: 1 }
            .validate()
            .is_err());
        assert!(PolicyKind::Cascade {
            suites: vec![],
            data: 2,
            parity: 1
        }
        .validate()
        .is_err());
        assert!(PolicyKind::Cascade {
            suites: vec![SuiteId::OneTimePad],
            data: 2,
            parity: 1
        }
        .validate()
        .is_err());
        assert!(PolicyKind::Shamir {
            threshold: 6,
            shares: 5
        }
        .validate()
        .is_err());
        assert!(PolicyKind::LeakageResilientShamir {
            threshold: 2,
            shares: 3,
            source_len: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn hndl_encrypted_falls_with_its_suite() {
        let (mut rng, keys) = fixtures();
        let policy = PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 2,
            parity: 1,
        };
        let enc = policy
            .encode(&mut rng, &keys, "hndl", b"harvested!")
            .unwrap();
        let stolen: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        let timeline = CryptanalyticTimeline::pessimistic_2045();
        assert_eq!(
            policy.hndl_recover(&keys, "hndl", &stolen, &enc.meta, &timeline, 2040),
            Recovery::Nothing
        );
        assert_eq!(
            policy.hndl_recover(&keys, "hndl", &stolen, &enc.meta, &timeline, 2050),
            Recovery::Full(b"harvested!".to_vec())
        );
    }

    #[test]
    fn hndl_cascade_needs_all_layers_broken() {
        let (mut rng, keys) = fixtures();
        let policy = PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 2,
            parity: 1,
        };
        let enc = policy.encode(&mut rng, &keys, "casc", b"layered").unwrap();
        let stolen: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        let timeline = CryptanalyticTimeline::pessimistic_2045(); // AES 2045, ChaCha 2060
        assert_eq!(
            policy.hndl_recover(&keys, "casc", &stolen, &enc.meta, &timeline, 2050),
            Recovery::Nothing,
            "one unbroken layer must protect the cascade"
        );
        assert_eq!(
            policy.hndl_recover(&keys, "casc", &stolen, &enc.meta, &timeline, 2060),
            Recovery::Full(b"layered".to_vec())
        );
    }

    #[test]
    fn hndl_shamir_immune_below_threshold_forever() {
        let (mut rng, keys) = fixtures();
        let policy = PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        };
        let enc = policy.encode(&mut rng, &keys, "its", b"eternal").unwrap();
        let mut stolen: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        stolen[0] = None;
        stolen[1] = None;
        stolen[2] = None; // only 2 of 5 stolen
        let timeline = CryptanalyticTimeline::pessimistic_2045();
        assert_eq!(
            policy.hndl_recover(&keys, "its", &stolen, &enc.meta, &timeline, 99_999),
            Recovery::Nothing
        );
        // But a threshold haul needs no break at all.
        let full: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        assert_eq!(
            policy.hndl_recover(&keys, "its", &full, &enc.meta, &timeline, 2026),
            Recovery::Full(b"eternal".to_vec())
        );
    }

    #[test]
    fn hndl_erasure_leaks_immediately() {
        let (mut rng, keys) = fixtures();
        let policy = PolicyKind::ErasureCoded { data: 4, parity: 2 };
        let enc = policy
            .encode(&mut rng, &keys, "plain", b"no confidentiality here")
            .unwrap();
        let mut stolen: Vec<Option<Vec<u8>>> = vec![None; 6];
        stolen[0] = Some(enc.shards[0].clone()); // one data shard
        let timeline = CryptanalyticTimeline::optimistic();
        match policy.hndl_recover(&keys, "plain", &stolen, &enc.meta, &timeline, 2026) {
            Recovery::Partial(f) => assert!((f - 0.25).abs() < 1e-9),
            other => panic!("expected partial leak, got {other:?}"),
        }
    }

    #[test]
    fn hndl_entropic_never_recovered() {
        let (mut rng, keys) = fixtures();
        let policy = PolicyKind::Entropic { data: 2, parity: 1 };
        let enc = policy
            .encode(&mut rng, &keys, "ent", b"high entropy assumed")
            .unwrap();
        let stolen: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        let timeline = CryptanalyticTimeline::pessimistic_2045();
        assert_eq!(
            policy.hndl_recover(&keys, "ent", &stolen, &enc.meta, &timeline, 99_999),
            Recovery::Nothing
        );
    }
}

//! Maintenance planning: turning a cryptanalytic forecast into a
//! schedule of archive operations.
//!
//! The paper's implicit operational question — *given* that ciphers and
//! signature schemes will fall, when must the archive act? The planner
//! walks a [`CryptanalyticTimeline`] against the archive's current
//! policies and emits a year-ordered action list:
//!
//! * **re-encode** before the year a policy's last standing suite falls
//!   (with a lead time covering the §3.2 campaign duration);
//! * **rotate + renew timestamps** before each signature-scheme break;
//! * **periodic refresh** for secret-shared policies (the mobile-
//!   adversary defense), at a cadence the caller chooses.
//!
//! The plan is advisory data — callers execute it against the archive —
//! so it is easy to test, print, and compare across scenarios.

use crate::archive::Archive;
use aeon_adversary::CryptanalyticTimeline;
use aeon_crypto::{SecurityLevel, SuiteId};
use aeon_store::campaign::ReencryptionModel;
use aeon_store::media::ArchiveSite;
use std::collections::BTreeSet;

/// One scheduled maintenance action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Begin a re-encryption campaign migrating objects off `doomed`
    /// (which breaks at `break_year`) so it completes before the break.
    StartReencodeCampaign {
        /// The suite that is about to fall.
        doomed: SuiteId,
        /// The year it falls.
        break_year: u32,
        /// Estimated campaign duration in months.
        campaign_months: f64,
    },
    /// Rotate the timestamp authority off `scheme` and renew every chain
    /// before `break_year`.
    RotateSignatureScheme {
        /// The scheme about to fall.
        scheme: String,
        /// The year it falls.
        break_year: u32,
    },
    /// Run a proactive refresh epoch over all secret-shared objects.
    RefreshShares,
}

/// A year-stamped plan entry.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntry {
    /// Year the action must start.
    pub year: u32,
    /// What to do.
    pub action: Action,
}

/// Planner configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Planning horizon (inclusive), e.g. 100 years out.
    pub horizon_year: u32,
    /// Refresh cadence for secret-shared objects, in years (0 = never).
    pub refresh_every_years: u32,
    /// Safety margin added on top of the estimated campaign duration,
    /// in years.
    pub campaign_margin_years: u32,
    /// Signature schemes currently in use, with their names.
    pub active_sig_scheme: &'static str,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            horizon_year: 2126,
            refresh_every_years: 1,
            campaign_margin_years: 1,
            active_sig_scheme: "wots-v1",
        }
    }
}

/// Computes the maintenance plan for `archive` under `timeline`,
/// modelling campaign durations against `site` (size/bandwidth).
pub fn plan(
    archive: &Archive,
    timeline: &CryptanalyticTimeline,
    site: &ArchiveSite,
    config: PlannerConfig,
) -> Vec<PlanEntry> {
    let now = archive.year();
    let mut entries: Vec<PlanEntry> = Vec::new();

    // Which suites protect at-rest data right now? The codec registry
    // answers per policy, so new families never need a planner edit.
    let mut suites_in_use: BTreeSet<SuiteId> = BTreeSet::new();
    let mut any_secret_shared = false;
    for m in archive.manifests() {
        let codec = m.policy.codec();
        if codec.at_rest_level() == SecurityLevel::InformationTheoretic {
            any_secret_shared = true;
        }
        let suites = codec.at_rest_suites();
        match suites.as_slice() {
            [] => {}
            [suite] => {
                suites_in_use.insert(*suite);
            }
            layered => {
                // A layered stack (cascade) is only doomed when its
                // LAST-falling layer falls — and only if every layer
                // has a forecast break at all.
                if let Some(last) = layered
                    .iter()
                    .filter_map(|s| timeline.ciphers().break_year(*s).map(|y| (y, *s)))
                    .max_by_key(|(y, _)| *y)
                {
                    if layered.len()
                        == layered
                            .iter()
                            .filter(|s| timeline.ciphers().break_year(**s).is_some())
                            .count()
                    {
                        suites_in_use.insert(last.1);
                    }
                }
            }
        }
    }

    // Re-encode campaigns ahead of each relevant cipher break.
    let campaign_months = ReencryptionModel::paper_assumptions(site.clone())
        .estimate()
        .realistic_months;
    let lead_years = (campaign_months / 12.0).ceil() as u32 + config.campaign_margin_years;
    for suite in suites_in_use {
        if let Some(break_year) = timeline.ciphers().break_year(suite) {
            if break_year > now && break_year <= config.horizon_year {
                entries.push(PlanEntry {
                    year: break_year.saturating_sub(lead_years).max(now),
                    action: Action::StartReencodeCampaign {
                        doomed: suite,
                        break_year,
                        campaign_months,
                    },
                });
            }
        }
    }

    // Signature rotation before the active scheme's break.
    if timeline
        .signatures()
        .is_broken(config.active_sig_scheme, config.horizon_year)
    {
        // Find the break year by scanning (schedule has no iterator; probe).
        let mut break_year = now;
        for y in now..=config.horizon_year {
            if timeline.signatures().is_broken(config.active_sig_scheme, y) {
                break_year = y;
                break;
            }
        }
        if break_year > now {
            entries.push(PlanEntry {
                year: break_year - 1,
                action: Action::RotateSignatureScheme {
                    scheme: config.active_sig_scheme.to_string(),
                    break_year,
                },
            });
        }
    }

    // Periodic refresh for secret-shared data.
    if any_secret_shared && config.refresh_every_years > 0 {
        let mut y = now + config.refresh_every_years;
        while y <= config.horizon_year {
            entries.push(PlanEntry {
                year: y,
                action: Action::RefreshShares,
            });
            y += config.refresh_every_years;
        }
    }

    entries.sort_by_key(|e| e.year);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Archive, ArchiveConfig, PolicyKind};

    fn site() -> ArchiveSite {
        ArchiveSite::hpss()
    }

    #[test]
    fn encrypted_archive_gets_campaign_before_break() {
        let mut archive = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            })
            .with_year(2026),
        )
        .unwrap();
        archive.ingest(b"x", "o").unwrap();
        let timeline = CryptanalyticTimeline::pessimistic_2045();
        let plan = plan(
            &archive,
            &timeline,
            &site(),
            PlannerConfig {
                refresh_every_years: 0,
                ..Default::default()
            },
        );
        let campaign = plan
            .iter()
            .find(|e| matches!(e.action, Action::StartReencodeCampaign { .. }))
            .expect("campaign scheduled");
        // Must start before 2045 with lead time for a ~26-month campaign.
        assert!(campaign.year < 2045);
        assert!(campaign.year >= 2040, "start {} too early", campaign.year);
        if let Action::StartReencodeCampaign {
            doomed, break_year, ..
        } = &campaign.action
        {
            assert_eq!(*doomed, SuiteId::Aes256CtrHmac);
            assert_eq!(*break_year, 2045);
        }
    }

    #[test]
    fn cascade_keyed_to_last_layer() {
        let mut archive = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            })
            .with_year(2026),
        )
        .unwrap();
        archive.ingest(b"x", "o").unwrap();
        let timeline = CryptanalyticTimeline::pessimistic_2045(); // AES 2045, ChaCha 2060
        let plan = plan(
            &archive,
            &timeline,
            &site(),
            PlannerConfig {
                refresh_every_years: 0,
                ..Default::default()
            },
        );
        let campaign = plan
            .iter()
            .find(|e| matches!(e.action, Action::StartReencodeCampaign { .. }))
            .expect("campaign scheduled");
        if let Action::StartReencodeCampaign { break_year, .. } = &campaign.action {
            assert_eq!(*break_year, 2060, "cascade dies with its LAST layer");
        }
    }

    #[test]
    fn shamir_archive_needs_no_campaign_only_refresh() {
        let mut archive = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            })
            .with_year(2026),
        )
        .unwrap();
        archive.ingest(b"x", "o").unwrap();
        let timeline = CryptanalyticTimeline::pessimistic_2045();
        let plan = plan(
            &archive,
            &timeline,
            &site(),
            PlannerConfig {
                horizon_year: 2036,
                refresh_every_years: 2,
                ..Default::default()
            },
        );
        assert!(plan
            .iter()
            .all(|e| !matches!(e.action, Action::StartReencodeCampaign { .. })));
        let refreshes = plan
            .iter()
            .filter(|e| e.action == Action::RefreshShares)
            .count();
        assert_eq!(refreshes, 5); // 2028, 2030, 2032, 2034, 2036
    }

    #[test]
    fn signature_rotation_scheduled_before_break() {
        let mut archive = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Replication { copies: 2 }).with_year(2026),
        )
        .unwrap();
        archive.ingest(b"x", "o").unwrap();
        let timeline = CryptanalyticTimeline::pessimistic_2045(); // wots-v1 breaks 2045
        let plan = plan(
            &archive,
            &timeline,
            &site(),
            PlannerConfig {
                refresh_every_years: 0,
                ..Default::default()
            },
        );
        let rot = plan
            .iter()
            .find(|e| matches!(e.action, Action::RotateSignatureScheme { .. }))
            .expect("rotation scheduled");
        assert_eq!(rot.year, 2044);
    }

    #[test]
    fn optimistic_timeline_plans_nothing_but_refresh() {
        let mut archive = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 2,
                parity: 1,
            })
            .with_year(2026),
        )
        .unwrap();
        archive.ingest(b"x", "o").unwrap();
        let plan = plan(
            &archive,
            &CryptanalyticTimeline::optimistic(),
            &site(),
            PlannerConfig::default(),
        );
        assert!(plan.is_empty(), "{plan:?}");
    }

    #[test]
    fn plan_is_year_ordered() {
        let mut archive = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Shamir {
                threshold: 2,
                shares: 3,
            })
            .with_year(2026),
        )
        .unwrap();
        archive.ingest(b"x", "o").unwrap();
        archive
            .ingest_with_policy(
                b"y",
                "o2",
                PolicyKind::Encrypted {
                    suite: SuiteId::Aes256CtrHmac,
                    data: 2,
                    parity: 1,
                },
            )
            .unwrap();
        let timeline = CryptanalyticTimeline::pessimistic_2045();
        let entries = plan(&archive, &timeline, &site(), PlannerConfig::default());
        assert!(entries.windows(2).all(|w| w[0].year <= w[1].year));
        assert!(!entries.is_empty());
    }
}

//! Property tests: Merkle inclusion, ledger chaining, chain verification.

use aeon_integrity::ledger::Ledger;
use aeon_integrity::merkle::MerkleTree;
use proptest::prelude::*;

proptest! {
    /// Every leaf of every tree size proves and verifies; foreign data
    /// never verifies.
    #[test]
    fn merkle_inclusion_sound(leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..40),
                              probe in any::<usize>()) {
        let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice())).unwrap();
        let idx = probe % leaves.len();
        let proof = tree.prove(idx).unwrap();
        prop_assert!(proof.verify(&tree.root(), &leaves[idx]));
        // A mutated leaf must not verify under the same proof.
        let mut forged = leaves[idx].clone();
        forged.push(0xFF);
        prop_assert!(!proof.verify(&tree.root(), &forged));
    }

    /// Changing any single leaf changes the root.
    #[test]
    fn merkle_root_binds_all_leaves(leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..16), 2..20),
                                    victim in any::<usize>()) {
        let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice())).unwrap();
        let idx = victim % leaves.len();
        let mut changed = leaves.clone();
        changed[idx][0] ^= 1;
        let tree2 = MerkleTree::build(changed.iter().map(|l| l.as_slice())).unwrap();
        prop_assert_ne!(tree.root(), tree2.root());
    }

    /// A ledger verifies iff untampered; corruption at any index is
    /// localized to that index by verify().
    #[test]
    fn ledger_detects_any_corruption(payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..20),
                                     victim in any::<usize>()) {
        let mut ledger = Ledger::new(1);
        for (i, p) in payloads.iter().enumerate() {
            ledger.append(2026 + i as u32, p.clone());
        }
        prop_assert!(ledger.verify().is_ok());
        let idx = (victim % payloads.len()) as u64;
        ledger.corrupt_for_simulation(idx, b"forged".to_vec());
        // Corruption detected at exactly the victim index — unless the
        // forged payload equals the original.
        if payloads[idx as usize] != b"forged" {
            let err = ledger.verify().unwrap_err();
            prop_assert_eq!(err.index, idx);
        }
    }
}

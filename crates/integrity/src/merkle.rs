//! Binary Merkle hash trees with inclusion proofs.

use aeon_crypto::Sha256;

/// Domain-separated leaf hash (prevents leaf/node second-preimage
/// confusion).
fn leaf_hash(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn node_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// A binary Merkle tree over byte leaves. Odd nodes at each level are
/// promoted unchanged (Bitcoin-style duplication is avoided to prevent
/// CVE-2012-2459-class ambiguities).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    levels: Vec<Vec<[u8; 32]>>,
}

/// An inclusion proof: the sibling path from a leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Sibling hashes with their side (`true` = sibling is on the right).
    pub path: Vec<([u8; 32], bool)>,
}

impl MerkleTree {
    /// Builds a tree over the given leaves. Returns `None` for an empty
    /// iterator.
    pub fn build<'a, I>(leaves: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let base: Vec<[u8; 32]> = leaves.into_iter().map(leaf_hash).collect();
        if base.is_empty() {
            return None;
        }
        let mut levels = vec![base];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(node_hash(&prev[i], &prev[i + 1]));
                } else {
                    next.push(prev[i]); // promote odd node
                }
                i += 2;
            }
            levels.push(next);
        }
        Some(MerkleTree { levels })
    }

    /// The root hash.
    pub fn root(&self) -> [u8; 32] {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Produces an inclusion proof for leaf `index`, or `None` if out of
    /// range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push((level[sibling], sibling > idx));
            }
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            path,
        })
    }
}

impl MerkleProof {
    /// Verifies that `leaf_data` is included under `root`.
    pub fn verify(&self, root: &[u8; 32], leaf_data: &[u8]) -> bool {
        let mut node = leaf_hash(leaf_data);
        for (sibling, is_right) in &self.path {
            node = if *is_right {
                node_hash(&node, sibling)
            } else {
                node_hash(sibling, &node)
            };
        }
        node == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_returns_none() {
        assert!(MerkleTree::build(std::iter::empty::<&[u8]>()).is_none());
    }

    #[test]
    fn single_leaf() {
        let tree = MerkleTree::build([b"only".as_ref()]).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.prove(0).unwrap();
        assert!(proof.path.is_empty());
        assert!(proof.verify(&tree.root(), b"only"));
        assert!(!proof.verify(&tree.root(), b"other"));
    }

    #[test]
    fn all_proofs_verify_various_sizes() {
        for n in 1..=17 {
            let ls = leaves(n);
            let tree = MerkleTree::build(ls.iter().map(|l| l.as_slice())).unwrap();
            for (i, leaf) in ls.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
                // Wrong leaf data must fail.
                assert!(!proof.verify(&tree.root(), b"forged"), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn out_of_range_proof() {
        let tree = MerkleTree::build([b"a".as_ref(), b"b"]).unwrap();
        assert!(tree.prove(2).is_none());
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = leaves(8);
        let tree = MerkleTree::build(base.iter().map(|l| l.as_slice())).unwrap();
        for i in 0..8 {
            let mut changed = base.clone();
            changed[i].push(b'!');
            let tree2 = MerkleTree::build(changed.iter().map(|l| l.as_slice())).unwrap();
            assert_ne!(tree.root(), tree2.root(), "leaf {i}");
        }
    }

    #[test]
    fn proof_not_transferable_between_positions() {
        let ls = leaves(4);
        let tree = MerkleTree::build(ls.iter().map(|l| l.as_slice())).unwrap();
        let proof0 = tree.prove(0).unwrap();
        // Proof for leaf 0 must not verify leaf 1's data.
        assert!(!proof0.verify(&tree.root(), &ls[1]));
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A tree whose leaf equals an interior node encoding must not
        // produce the same root as the two-leaf tree.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let interior = node_hash(&a, &b);
        let t1 = MerkleTree::build([b"a".as_ref(), b"b"]).unwrap();
        let t2 = MerkleTree::build([interior.as_ref()]).unwrap();
        assert_ne!(t1.root(), t2.root());
    }
}

//! Long-term integrity: Merkle trees, renewable timestamp chains, and a
//! simulated public ledger.
//!
//! The paper's §3.3 observes that long-term *integrity* — unlike long-term
//! confidentiality — is achievable with computational tools: a chain of
//! digitally signed timestamps stays trustworthy as long as each signature
//! is renewed with a stronger scheme *before* its own scheme is broken.
//! This crate builds that machinery:
//!
//! * [`merkle`] — binary hash trees with inclusion proofs, used to batch
//!   archive manifests into single timestamped digests.
//! * [`timestamp`] — Haber–Stornetta renewable timestamp chains backed by
//!   hash-based signatures, with a [`timestamp::SigBreakSchedule`]
//!   modelling cryptanalytic progress against signature schemes, and a
//!   LINCOS-style option to anchor chains on *information-theoretically
//!   hiding* Pedersen commitments instead of plain hashes (so publishing
//!   the chain never erodes confidentiality).
//! * [`ledger`] — a hash-chained, append-only public ledger simulation
//!   (the substrate HasDPSS gets from a blockchain) for publishing VSS
//!   commitments and timestamp roots.
//!
//! # Examples
//!
//! ```
//! use aeon_integrity::merkle::MerkleTree;
//!
//! let tree = MerkleTree::build([b"a".as_ref(), b"b", b"c"]).unwrap();
//! let proof = tree.prove(1).unwrap();
//! assert!(proof.verify(&tree.root(), b"b"));
//! assert!(!proof.verify(&tree.root(), b"x"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ledger;
pub mod merkle;
pub mod timestamp;

pub use merkle::{MerkleProof, MerkleTree};
pub use timestamp::{DocumentChain, SigBreakSchedule, TimestampAuthority};

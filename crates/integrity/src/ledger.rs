//! A simulated append-only public ledger.
//!
//! HasDPSS and similar decentralized key-management designs assume a
//! public bulletin board with integrity (a blockchain). For the archive
//! simulations we need only its *interface properties*: append-only,
//! hash-chained, globally visible, with per-entry quorum acknowledgement.
//! This module provides exactly that, plus deliberate corruption hooks so
//! adversary experiments can probe detection.

use aeon_crypto::Sha256;

/// One ledger entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Position in the ledger.
    pub index: u64,
    /// Simulated year of the append.
    pub year: u32,
    /// Application payload (commitments, timestamp roots, manifests).
    pub payload: Vec<u8>,
    /// Hash of the previous entry (all zeros for the genesis entry).
    pub prev_hash: [u8; 32],
    /// This entry's hash.
    pub hash: [u8; 32],
}

fn entry_hash(index: u64, year: u32, payload: &[u8], prev_hash: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&index.to_be_bytes());
    h.update(&year.to_be_bytes());
    h.update(&(payload.len() as u64).to_be_bytes());
    h.update(payload);
    h.update(prev_hash);
    h.finalize()
}

/// Where a ledger verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerCorruption {
    /// Index of the first corrupt entry.
    pub index: u64,
}

impl core::fmt::Display for LedgerCorruption {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ledger corrupt at entry {}", self.index)
    }
}

impl std::error::Error for LedgerCorruption {}

/// A hash-chained append-only ledger with a configurable acknowledgement
/// quorum (modelling replication across independent maintainers).
///
/// # Examples
///
/// ```
/// use aeon_integrity::ledger::Ledger;
///
/// let mut ledger = Ledger::new(3);
/// let idx = ledger.append(2026, b"vss commitments for object 7".to_vec());
/// assert_eq!(idx, 0);
/// assert!(ledger.verify().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
    quorum: usize,
    acks: Vec<usize>,
}

impl Ledger {
    /// Creates a ledger requiring `quorum` maintainer acknowledgements per
    /// entry before it counts as final.
    pub fn new(quorum: usize) -> Self {
        Ledger {
            entries: Vec::new(),
            quorum,
            acks: Vec::new(),
        }
    }

    /// Appends a payload, returning its index. The entry starts with one
    /// acknowledgement (the appender's).
    pub fn append(&mut self, year: u32, payload: Vec<u8>) -> u64 {
        let index = self.entries.len() as u64;
        let prev_hash = self.entries.last().map(|e| e.hash).unwrap_or([0u8; 32]);
        let hash = entry_hash(index, year, &payload, &prev_hash);
        self.entries.push(LedgerEntry {
            index,
            year,
            payload,
            prev_hash,
            hash,
        });
        self.acks.push(1);
        index
    }

    /// Records an acknowledgement for an entry.
    pub fn acknowledge(&mut self, index: u64) {
        if let Some(a) = self.acks.get_mut(index as usize) {
            *a += 1;
        }
    }

    /// Returns `true` once the entry has reached quorum.
    pub fn is_final(&self, index: u64) -> bool {
        self.acks
            .get(index as usize)
            .is_some_and(|&a| a >= self.quorum)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the ledger has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns an entry by index.
    pub fn entry(&self, index: u64) -> Option<&LedgerEntry> {
        self.entries.get(index as usize)
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.entries.iter()
    }

    /// Verifies the whole hash chain.
    ///
    /// # Errors
    ///
    /// Returns the index of the first corrupt entry.
    pub fn verify(&self) -> Result<(), LedgerCorruption> {
        let mut prev = [0u8; 32];
        for e in &self.entries {
            if e.prev_hash != prev
                || e.hash != entry_hash(e.index, e.year, &e.payload, &e.prev_hash)
            {
                return Err(LedgerCorruption { index: e.index });
            }
            prev = e.hash;
        }
        Ok(())
    }

    /// Corrupts an entry's payload in place — an adversary-simulation hook,
    /// never called by honest code paths.
    pub fn corrupt_for_simulation(&mut self, index: u64, new_payload: Vec<u8>) {
        if let Some(e) = self.entries.get_mut(index as usize) {
            e.payload = new_payload;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_verify() {
        let mut l = Ledger::new(1);
        for i in 0..10 {
            l.append(2026 + i, format!("entry {i}").into_bytes());
        }
        assert_eq!(l.len(), 10);
        assert!(l.verify().is_ok());
    }

    #[test]
    fn chain_links_correctly() {
        let mut l = Ledger::new(1);
        l.append(2026, b"a".to_vec());
        l.append(2027, b"b".to_vec());
        let e0 = l.entry(0).unwrap().clone();
        let e1 = l.entry(1).unwrap();
        assert_eq!(e1.prev_hash, e0.hash);
        assert_eq!(e0.prev_hash, [0u8; 32]);
    }

    #[test]
    fn corruption_detected_at_first_bad_entry() {
        let mut l = Ledger::new(1);
        for i in 0..5 {
            l.append(2026, vec![i]);
        }
        l.corrupt_for_simulation(2, b"rewritten history".to_vec());
        assert_eq!(l.verify().unwrap_err(), LedgerCorruption { index: 2 });
    }

    #[test]
    fn quorum_semantics() {
        let mut l = Ledger::new(3);
        let idx = l.append(2026, b"x".to_vec());
        assert!(!l.is_final(idx));
        l.acknowledge(idx);
        assert!(!l.is_final(idx));
        l.acknowledge(idx);
        assert!(l.is_final(idx));
        // Unknown index is never final.
        assert!(!l.is_final(99));
    }

    #[test]
    fn empty_ledger_verifies() {
        let l = Ledger::new(1);
        assert!(l.verify().is_ok());
        assert!(l.is_empty());
        assert!(l.entry(0).is_none());
    }
}

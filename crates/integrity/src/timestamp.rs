//! Renewable timestamp chains (Haber–Stornetta) with breakable signature
//! schemes and LINCOS-style hiding commitments.
//!
//! The long-term integrity argument: a signature only needs to be
//! unforgeable *until the next, stronger signature is laid over it*. A
//! chain of timestamps where link `i+1` signs (commitment, link `i`) at
//! year `y_{i+1}` therefore proves existence at `y_0` to a verifier at
//! year `Y`, provided every link's scheme was unbroken when its successor
//! was created, and the final link's scheme is unbroken at `Y`.
//!
//! Two anchoring modes:
//!
//! * [`AnchorMode::HashDigest`] — the chain carries `SHA-256(document)`.
//!   Fine for integrity, but the digest is only *computationally* hiding:
//!   a future adversary with a preimage break (or a candidate document)
//!   learns about the content — the leak LINCOS identified.
//! * [`AnchorMode::PedersenHiding`] — the chain carries a Pedersen
//!   commitment, information-theoretically hiding; confidentiality of the
//!   timestamped document survives any cryptanalytic future.

use aeon_crypto::sig::{MerklePublicKey, MerkleSignature, MerkleSigner};
use aeon_crypto::{CryptoRng, Sha256};
use aeon_num::pedersen::{Commitment, Committer, Opening};
use std::collections::BTreeMap;

/// A simulated year on the archival timeline.
pub type SimYear = u32;

/// Maps signature-scheme names to the year cryptanalysis breaks them.
#[derive(Debug, Clone, Default)]
pub struct SigBreakSchedule {
    breaks: BTreeMap<String, SimYear>,
}

impl SigBreakSchedule {
    /// Creates an empty schedule (nothing breaks).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `scheme` to fall at `year`.
    pub fn set_break(&mut self, scheme: &str, year: SimYear) {
        self.breaks.insert(scheme.to_string(), year);
    }

    /// Returns `true` if `scheme` is broken at `year`.
    pub fn is_broken(&self, scheme: &str, year: SimYear) -> bool {
        self.breaks.get(scheme).is_some_and(|&by| year >= by)
    }
}

/// How a document is bound into its timestamp chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorMode {
    /// Plain SHA-256 digest (computationally hiding only).
    HashDigest,
    /// Pedersen commitment (information-theoretically hiding).
    PedersenHiding,
}

/// A token issued by a timestamp authority over some message bytes.
#[derive(Debug, Clone)]
pub struct TimestampToken {
    /// Year of issuance.
    pub year: SimYear,
    /// Name of the signature scheme used (consulted against the break
    /// schedule).
    pub scheme: String,
    /// The authority's public key at issuance.
    pub public_key: MerklePublicKey,
    /// Signature over the message.
    pub signature: MerkleSignature,
}

/// A simulated timestamp authority with a rotating hash-based key.
///
/// Rotation models the real-world practice of migrating to stronger
/// schemes: each rotation gives the authority a fresh key under a new
/// scheme name with its own entry in the break schedule.
#[derive(Debug)]
pub struct TimestampAuthority {
    scheme: String,
    signer: MerkleSigner,
    year: SimYear,
}

impl TimestampAuthority {
    /// Creates an authority at `year` using scheme `scheme` with capacity
    /// for `2^height` timestamps before rotation.
    pub fn new<R: CryptoRng + ?Sized>(
        rng: &mut R,
        scheme: &str,
        year: SimYear,
        height: usize,
    ) -> Self {
        TimestampAuthority {
            scheme: scheme.to_string(),
            signer: MerkleSigner::generate(rng, height),
            year,
        }
    }

    /// The authority's current scheme name.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The authority's current year.
    pub fn year(&self) -> SimYear {
        self.year
    }

    /// Advances the simulated clock.
    pub fn advance_to(&mut self, year: SimYear) {
        assert!(year >= self.year, "time does not run backwards");
        self.year = year;
    }

    /// Rotates to a new scheme/key.
    pub fn rotate<R: CryptoRng + ?Sized>(&mut self, rng: &mut R, scheme: &str, height: usize) {
        self.scheme = scheme.to_string();
        self.signer = MerkleSigner::generate(rng, height);
    }

    /// Signatures remaining before the current key is exhausted.
    pub fn remaining(&self) -> usize {
        self.signer.remaining()
    }

    /// Issues a timestamp token over `message`.
    ///
    /// # Errors
    ///
    /// Returns an error if the key is exhausted (rotate first).
    pub fn issue(&mut self, message: &[u8]) -> Result<TimestampToken, aeon_crypto::sig::SigError> {
        let public_key = self.signer.public_key();
        let signature = self.signer.sign(message)?;
        Ok(TimestampToken {
            year: self.year,
            scheme: self.scheme.clone(),
            public_key,
            signature,
        })
    }
}

/// Why a chain failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainInvalid {
    /// The chain has no links.
    Empty,
    /// A signature failed cryptographic verification.
    BadSignature {
        /// Link index.
        link: usize,
    },
    /// A link's scheme was already broken when its successor was created —
    /// a forger could have rewritten history in the gap.
    RenewedTooLate {
        /// Link index whose scheme lapsed.
        link: usize,
    },
    /// The newest link's scheme is broken at verification time.
    HeadBroken,
    /// Link years are not monotonically non-decreasing.
    NonMonotonicTime,
}

impl core::fmt::Display for ChainInvalid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChainInvalid::Empty => write!(f, "timestamp chain is empty"),
            ChainInvalid::BadSignature { link } => write!(f, "link {link} signature invalid"),
            ChainInvalid::RenewedTooLate { link } => {
                write!(f, "link {link} was renewed after its scheme broke")
            }
            ChainInvalid::HeadBroken => write!(f, "newest link's scheme is broken"),
            ChainInvalid::NonMonotonicTime => write!(f, "link years decrease"),
        }
    }
}

impl std::error::Error for ChainInvalid {}

/// One link in a document's timestamp chain.
#[derive(Debug, Clone)]
pub struct ChainLink {
    /// The signed payload digest (anchor + previous link binding).
    pub payload: [u8; 32],
    /// The authority token over `payload`.
    pub token: TimestampToken,
}

/// A renewable timestamp chain for one document.
#[derive(Debug, Clone)]
pub struct DocumentChain {
    anchor_mode: AnchorMode,
    /// The anchored value: digest or serialized Pedersen commitment.
    anchor: Vec<u8>,
    /// Pedersen opening held by the document owner (None for hash mode).
    opening: Option<Opening>,
    links: Vec<ChainLink>,
}

impl DocumentChain {
    /// Creates a chain for `document`, anchored per `mode`, with an
    /// initial timestamp from `tsa`.
    ///
    /// # Errors
    ///
    /// Propagates authority key exhaustion.
    pub fn create<R: CryptoRng + ?Sized>(
        rng: &mut R,
        tsa: &mut TimestampAuthority,
        committer: &Committer,
        mode: AnchorMode,
        document: &[u8],
    ) -> Result<Self, aeon_crypto::sig::SigError> {
        let (anchor, opening) = match mode {
            AnchorMode::HashDigest => (Sha256::digest(document).to_vec(), None),
            AnchorMode::PedersenHiding => {
                let blinding = aeon_crypto::random_array::<32, _>(rng);
                let (c, o) = committer.commit(&Sha256::digest(document), &blinding);
                (c.to_be_bytes(), Some(o))
            }
        };
        let payload = Self::link_payload(&anchor, None);
        let token = tsa.issue(&payload)?;
        Ok(DocumentChain {
            anchor_mode: mode,
            anchor,
            opening,
            links: vec![ChainLink { payload, token }],
        })
    }

    fn link_payload(anchor: &[u8], prev: Option<&ChainLink>) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(anchor);
        if let Some(prev) = prev {
            h.update(&prev.payload);
            h.update(&prev.token.year.to_be_bytes());
            h.update(prev.token.scheme.as_bytes());
            h.update(&prev.token.public_key.root);
        }
        h.finalize()
    }

    /// The anchoring mode.
    pub fn anchor_mode(&self) -> AnchorMode {
        self.anchor_mode
    }

    /// The anchored bytes (digest or commitment).
    pub fn anchor(&self) -> &[u8] {
        &self.anchor
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the chain has no links (never true after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Renews the chain with a fresh token from `tsa` (typically a rotated,
    /// stronger scheme).
    ///
    /// # Errors
    ///
    /// Propagates authority key exhaustion.
    pub fn renew(
        &mut self,
        tsa: &mut TimestampAuthority,
    ) -> Result<(), aeon_crypto::sig::SigError> {
        let payload = Self::link_payload(&self.anchor, self.links.last());
        let token = tsa.issue(&payload)?;
        self.links.push(ChainLink { payload, token });
        Ok(())
    }

    /// Verifies the chain at year `now` against a break schedule. On
    /// success returns the year the document provably existed (the first
    /// link's year).
    ///
    /// # Errors
    ///
    /// Returns the first [`ChainInvalid`] condition found.
    pub fn verify(
        &self,
        schedule: &SigBreakSchedule,
        now: SimYear,
    ) -> Result<SimYear, ChainInvalid> {
        if self.links.is_empty() {
            return Err(ChainInvalid::Empty);
        }
        // Recompute payloads and check signatures.
        let mut prev: Option<&ChainLink> = None;
        for (i, link) in self.links.iter().enumerate() {
            let expect = Self::link_payload(&self.anchor, prev);
            if expect != link.payload {
                return Err(ChainInvalid::BadSignature { link: i });
            }
            if !link
                .token
                .public_key
                .verify(&link.payload, &link.token.signature)
            {
                return Err(ChainInvalid::BadSignature { link: i });
            }
            if let Some(p) = prev {
                if link.token.year < p.token.year {
                    return Err(ChainInvalid::NonMonotonicTime);
                }
            }
            prev = Some(link);
        }
        // Check renewal timeliness: link i must outlive until link i+1.
        for i in 0..self.links.len() - 1 {
            let this = &self.links[i].token;
            let next = &self.links[i + 1].token;
            if schedule.is_broken(&this.scheme, next.year) {
                return Err(ChainInvalid::RenewedTooLate { link: i });
            }
        }
        let head = &self.links.last().expect("non-empty").token;
        if schedule.is_broken(&head.scheme, now) {
            return Err(ChainInvalid::HeadBroken);
        }
        Ok(self.links[0].token.year)
    }

    /// Proves the document content against the anchor (opening the
    /// Pedersen commitment in hiding mode).
    pub fn prove_content(&self, committer: &Committer, document: &[u8]) -> bool {
        match self.anchor_mode {
            AnchorMode::HashDigest => Sha256::digest(document).to_vec() == self.anchor,
            AnchorMode::PedersenHiding => {
                let Some(opening) = &self.opening else {
                    return false;
                };
                let digest = Sha256::digest(document);
                // Reconstruct the commitment from the stored bytes.
                let commitment = Commitment(aeon_num::GroupElement::from_be_bytes(&self.anchor));
                committer.verify(&commitment, &digest, opening)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;
    use aeon_num::ModpGroup;

    fn setup() -> (ChaChaDrbg, Committer) {
        (
            ChaChaDrbg::from_u64_seed(55),
            Committer::new(ModpGroup::rfc3526_2048()),
        )
    }

    #[test]
    fn create_and_verify_hash_mode() {
        let (mut rng, committer) = setup();
        let mut tsa = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 3);
        let chain = DocumentChain::create(
            &mut rng,
            &mut tsa,
            &committer,
            AnchorMode::HashDigest,
            b"the document",
        )
        .unwrap();
        let schedule = SigBreakSchedule::new();
        assert_eq!(chain.verify(&schedule, 2126).unwrap(), 2026);
        assert!(chain.prove_content(&committer, b"the document"));
        assert!(!chain.prove_content(&committer, b"another document"));
    }

    #[test]
    fn renewal_extends_lifetime_across_breaks() {
        let (mut rng, committer) = setup();
        let mut tsa = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 3);
        let mut chain = DocumentChain::create(
            &mut rng,
            &mut tsa,
            &committer,
            AnchorMode::HashDigest,
            b"doc",
        )
        .unwrap();

        let mut schedule = SigBreakSchedule::new();
        schedule.set_break("wots-v1", 2050);

        // Renew in 2045 with a stronger scheme, before v1 breaks.
        tsa.advance_to(2045);
        tsa.rotate(&mut rng, "wots-v2", 3);
        chain.renew(&mut tsa).unwrap();

        // In 2060, v1 is broken but the chain still verifies to 2026.
        assert_eq!(chain.verify(&schedule, 2060).unwrap(), 2026);
    }

    #[test]
    fn late_renewal_detected() {
        let (mut rng, committer) = setup();
        let mut tsa = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 3);
        let mut chain = DocumentChain::create(
            &mut rng,
            &mut tsa,
            &committer,
            AnchorMode::HashDigest,
            b"doc",
        )
        .unwrap();
        let mut schedule = SigBreakSchedule::new();
        schedule.set_break("wots-v1", 2050);

        // Renewal happens in 2055 — AFTER the break. Invalid.
        tsa.advance_to(2055);
        tsa.rotate(&mut rng, "wots-v2", 3);
        chain.renew(&mut tsa).unwrap();
        assert_eq!(
            chain.verify(&schedule, 2060).unwrap_err(),
            ChainInvalid::RenewedTooLate { link: 0 }
        );
    }

    #[test]
    fn unrenewed_chain_dies_with_its_scheme() {
        let (mut rng, committer) = setup();
        let mut tsa = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 3);
        let chain = DocumentChain::create(
            &mut rng,
            &mut tsa,
            &committer,
            AnchorMode::HashDigest,
            b"doc",
        )
        .unwrap();
        let mut schedule = SigBreakSchedule::new();
        schedule.set_break("wots-v1", 2050);
        assert!(chain.verify(&schedule, 2049).is_ok());
        assert_eq!(
            chain.verify(&schedule, 2050).unwrap_err(),
            ChainInvalid::HeadBroken
        );
    }

    #[test]
    fn pedersen_mode_hides_and_proves() {
        let (mut rng, committer) = setup();
        let mut tsa = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 2);
        let chain = DocumentChain::create(
            &mut rng,
            &mut tsa,
            &committer,
            AnchorMode::PedersenHiding,
            b"medical record",
        )
        .unwrap();
        // The anchor is a group element, not the digest.
        assert_ne!(chain.anchor(), Sha256::digest(b"medical record").as_ref());
        assert!(chain.prove_content(&committer, b"medical record"));
        assert!(!chain.prove_content(&committer, b"forged record"));
        assert!(chain.verify(&SigBreakSchedule::new(), 3000).is_ok());
    }

    #[test]
    fn pedersen_anchor_randomized_across_chains() {
        let (mut rng, committer) = setup();
        let mut tsa = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 3);
        let c1 = DocumentChain::create(
            &mut rng,
            &mut tsa,
            &committer,
            AnchorMode::PedersenHiding,
            b"same doc",
        )
        .unwrap();
        let c2 = DocumentChain::create(
            &mut rng,
            &mut tsa,
            &committer,
            AnchorMode::PedersenHiding,
            b"same doc",
        )
        .unwrap();
        assert_ne!(
            c1.anchor(),
            c2.anchor(),
            "ITS hiding requires randomization"
        );
    }

    #[test]
    fn tampered_token_rejected() {
        let (mut rng, committer) = setup();
        let mut tsa = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 2);
        let mut chain = DocumentChain::create(
            &mut rng,
            &mut tsa,
            &committer,
            AnchorMode::HashDigest,
            b"doc",
        )
        .unwrap();
        chain.links[0].payload[0] ^= 1;
        assert!(matches!(
            chain.verify(&SigBreakSchedule::new(), 2100),
            Err(ChainInvalid::BadSignature { link: 0 })
        ));
    }

    #[test]
    fn authority_exhaustion_and_rotation() {
        let (mut rng, _) = setup();
        let mut tsa = TimestampAuthority::new(&mut rng, "v1", 2026, 1); // 2 sigs
        tsa.issue(b"a").unwrap();
        tsa.issue(b"b").unwrap();
        assert!(tsa.issue(b"c").is_err());
        tsa.rotate(&mut rng, "v2", 1);
        assert_eq!(tsa.remaining(), 2);
        assert!(tsa.issue(b"c").is_ok());
        assert_eq!(tsa.scheme(), "v2");
    }

    #[test]
    fn non_monotonic_time_rejected() {
        let (mut rng, committer) = setup();
        let mut tsa = TimestampAuthority::new(&mut rng, "v1", 2030, 3);
        let mut chain = DocumentChain::create(
            &mut rng,
            &mut tsa,
            &committer,
            AnchorMode::HashDigest,
            b"doc",
        )
        .unwrap();
        // Manually fabricate an earlier-dated renewal by rebuilding a TSA
        // "in the past" — the chain must notice years decreasing.
        let mut past_tsa = TimestampAuthority::new(&mut rng, "v1", 2020, 3);
        chain.renew(&mut past_tsa).unwrap();
        assert_eq!(
            chain.verify(&SigBreakSchedule::new(), 2100).unwrap_err(),
            ChainInvalid::NonMonotonicTime
        );
    }
}

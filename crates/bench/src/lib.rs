//! Experiment harness utilities: table rendering and result recording.
//!
//! Every `exp_*` binary in this crate regenerates one table or figure
//! from the paper (see `DESIGN.md`'s experiment index). The binaries
//! print human-readable tables to stdout and, when `AEON_RESULTS_DIR` is
//! set, also write machine-readable CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write;
use std::path::PathBuf;

/// A simple aligned-text table for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (displayable cells).
    pub fn row<D: Display>(&mut self, cells: &[D]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and optionally records CSV under
    /// `AEON_RESULTS_DIR`.
    pub fn emit(&self, experiment_id: &str) {
        println!("{}", self.render());
        if let Ok(dir) = std::env::var("AEON_RESULTS_DIR") {
            let path = PathBuf::from(dir).join(format!("{experiment_id}.csv"));
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = writeln!(f, "{}", self.headers.join(","));
                for row in &self.rows {
                    let _ = writeln!(
                        f,
                        "{}",
                        row.iter()
                            .map(|c| c.replace(',', ";"))
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                }
            }
        }
    }
}

/// Formats a float with fixed precision for table cells.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Generates a high-entropy payload of `len` bytes (deterministic).
pub fn reference_payload(len: usize, seed: u64) -> Vec<u8> {
    use aeon_crypto::{ChaChaDrbg, CryptoRng};
    let mut rng = ChaChaDrbg::from_u64_seed(seed);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("333"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn payload_deterministic() {
        assert_eq!(reference_payload(64, 1), reference_payload(64, 1));
        assert_ne!(reference_payload(64, 1), reference_payload(64, 2));
    }
}

//! Experiment harness utilities: table rendering and result recording.
//!
//! Every `exp_*` binary in this crate regenerates one table or figure
//! from the paper (see `DESIGN.md`'s experiment index). The binaries
//! print human-readable tables to stdout and, when `AEON_RESULTS_DIR` is
//! set, also write machine-readable CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write;
use std::path::PathBuf;

/// A simple aligned-text table for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (displayable cells).
    pub fn row<D: Display>(&mut self, cells: &[D]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and optionally records CSV under
    /// `AEON_RESULTS_DIR`.
    pub fn emit(&self, experiment_id: &str) {
        println!("{}", self.render());
        if let Ok(dir) = std::env::var("AEON_RESULTS_DIR") {
            let path = PathBuf::from(dir).join(format!("{experiment_id}.csv"));
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = writeln!(f, "{}", self.headers.join(","));
                for row in &self.rows {
                    let _ = writeln!(
                        f,
                        "{}",
                        row.iter()
                            .map(|c| c.replace(',', ";"))
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                }
            }
        }
    }
}

/// A minimal JSON value for machine-readable benchmark artifacts. The
/// workspace carries no serialization dependency, so this is the whole
/// implementation: numbers, strings, ordered objects, arrays.
#[derive(Debug, Clone)]
pub enum Json {
    /// A number (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An object whose fields keep insertion order.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        match self {
            Json::Num(v) if v.is_finite() => {
                // Integral values print without a trailing ".0" so the
                // artifact stays pleasant to read.
                if *v == v.trunc() && v.abs() < 1e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v}")
                }
            }
            Json::Num(_) => "null".to_string(),
            Json::Str(s) => format!("\"{}\"", escape(s)),
            Json::Obj(fields) => {
                let body: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", body.join(","))
            }
            Json::Arr(items) => {
                let body: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", body.join(","))
            }
        }
    }

    /// Writes the rendered value to `<AEON_RESULTS_DIR>/<name>` (or
    /// `./<name>` when the variable is unset) and returns the path, or
    /// `None` if the write failed.
    pub fn write_artifact(&self, name: &str) -> Option<PathBuf> {
        let dir = std::env::var("AEON_RESULTS_DIR").unwrap_or_else(|_| ".".to_string());
        let path = PathBuf::from(dir).join(name);
        let mut f = std::fs::File::create(&path).ok()?;
        writeln!(f, "{}", self.render()).ok()?;
        Some(path)
    }
}

/// Parsed command-line arguments for the `exp_*` binaries.
///
/// The experiment binaries take a handful of boolean switches and
/// `--key value` pairs; this helper replaces the per-binary
/// `std::env::args()` loops with one shared lookup surface.
///
/// # Examples
///
/// ```
/// use aeon_bench::CliArgs;
///
/// let args = CliArgs::from_vec(vec!["--quick".into(), "--rows".into(), "16".into()]);
/// assert!(args.flag("--quick"));
/// assert!(!args.flag("--measured"));
/// assert_eq!(args.usize_value("--rows", 8), 16);
/// assert_eq!(args.usize_value("--iters", 3), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CliArgs {
    args: Vec<String>,
}

impl CliArgs {
    /// Captures the process arguments (without the binary name).
    pub fn parse() -> Self {
        CliArgs {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit argument vector (tests, embedding).
    pub fn from_vec(args: Vec<String>) -> Self {
        CliArgs { args }
    }

    /// Whether the boolean switch `name` (e.g. `--quick`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value following `--key` (either `--key value` or
    /// `--key=value`), if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        let prefix = format!("{name}=");
        for (i, a) in self.args.iter().enumerate() {
            if a == name {
                return self.args.get(i + 1).map(String::as_str);
            }
            if let Some(v) = a.strip_prefix(&prefix) {
                return Some(v);
            }
        }
        None
    }

    /// `--key` parsed as `usize`, falling back to `default` when the
    /// key is absent or malformed.
    pub fn usize_value(&self, name: &str, default: usize) -> usize {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Formats a float with fixed precision for table cells.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Generates a high-entropy payload of `len` bytes (deterministic).
pub fn reference_payload(len: usize, seed: u64) -> Vec<u8> {
    use aeon_crypto::{ChaChaDrbg, CryptoRng};
    let mut rng = ChaChaDrbg::from_u64_seed(seed);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("333"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn json_renders_and_escapes() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("a \"b\"\n".into())),
            ("n".into(), Json::Num(2.0)),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(1.5), Json::Num(f64::NAN)]),
            ),
        ]);
        assert_eq!(j.render(), r#"{"name":"a \"b\"\n","n":2,"xs":[1.5,null]}"#);
    }

    #[test]
    fn payload_deterministic() {
        assert_eq!(reference_payload(64, 1), reference_payload(64, 1));
        assert_ne!(reference_payload(64, 1), reference_payload(64, 2));
    }
}

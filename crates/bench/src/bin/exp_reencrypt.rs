//! E3 — §3.2: re-encryption campaign durations for real archives.
//!
//! Reproduces the paper's four read-time estimates (HPSS 6.75 months,
//! MARS 10.35, EOS 8.3, Pergamum 0.76) from the same size/bandwidth
//! figures, then extends them with the paper's two penalty factors and a
//! day-by-day simulation with competing ingest. Finally it validates the
//! analytic model against a scaled-down *live* re-encryption of an
//! in-memory archive.

use aeon_bench::{f2, CliArgs, Json, Table};
use aeon_core::{Archive, ArchiveConfig, IntegrityMode, PolicyKind};
use aeon_crypto::SuiteId;
use aeon_store::campaign::{simulate_campaign, ReencryptionModel};
use aeon_store::media::{ArchiveSite, DAYS_PER_MONTH};
use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};

/// Relative agreement bound between the measured-and-extrapolated and
/// closed-form campaign figures. The two share only the site's
/// size/bandwidth numbers — the measured run goes through the real
/// codec/plan/executor path on a throughput-charged cluster — so
/// agreement this tight is the cross-check, not a tautology.
const AGREEMENT_BOUND: f64 = 0.02;

fn main() {
    let measured_mode = CliArgs::parse().flag("--measured");
    let paper_months = [6.75, 10.35, 8.3, 0.76];
    let mut table = Table::new(
        "§3.2 re-encryption durations (months)",
        &[
            "archive",
            "size(PB)",
            "read(TB/day)",
            "read-only",
            "paper",
            "+write-back",
            "+reserved",
            "sim+ingest",
        ],
    );
    for (site, paper) in ArchiveSite::paper_examples().into_iter().zip(paper_months) {
        let est = ReencryptionModel::paper_assumptions(site.clone()).estimate();
        // Day-by-day simulation with ingest at 25% of write bandwidth.
        let sim = simulate_campaign(&site, site.write_tb_per_day * 0.25)
            .expect("25% ingest leaves bandwidth for migration");
        table.row(&[
            site.name.clone(),
            f2(site.capacity_tb / 1000.0),
            f2(site.read_tb_per_day),
            f2(est.read_only_months),
            f2(paper),
            f2(est.with_write_months),
            f2(est.realistic_months),
            f2(sim.days / DAYS_PER_MONTH),
        ]);
    }
    // The forward-looking exabyte archive.
    let exa = ArchiveSite::exabyte_archive();
    let est = ReencryptionModel::paper_assumptions(exa.clone()).estimate();
    table.row(&[
        exa.name.clone(),
        f2(exa.capacity_tb / 1000.0),
        f2(exa.read_tb_per_day),
        f2(est.read_only_months),
        "-".to_string(),
        f2(est.with_write_months),
        f2(est.realistic_months),
        "-".to_string(),
    ]);
    table.emit("e3_reencrypt");

    println!(
        "Paper's conclusion check: realistic exabyte-scale campaign = {:.1} YEARS\n",
        est.realistic_months / 12.0
    );

    // Live validation at laptop scale: re-encrypt a real in-memory
    // archive and confirm bytes-read ≈ bytes-stored (the model's premise).
    let mut archive = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 4,
            parity: 2,
        })
        .with_integrity(IntegrityMode::DigestOnly),
    )
    .expect("archive");
    let object_size = 64 * 1024;
    let objects = 32;
    for i in 0..objects {
        let payload = aeon_bench::reference_payload(object_size, i as u64);
        archive
            .ingest(&payload, &format!("obj-{i}"))
            .expect("ingest");
    }
    let stored_before = archive.stats().stored_bytes;
    let (count, read, written) = archive
        .reencode_all(PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 4,
            parity: 2,
        })
        .expect("campaign");
    println!("Live campaign: {count} objects, read {read} B, wrote {written} B");
    println!(
        "  model premise check: bytes-read / bytes-stored = {:.3} (expect ~1.0)",
        read as f64 / stored_before as f64
    );
    assert!((read as f64 / stored_before as f64 - 1.0).abs() < 0.05);
    // Every object still retrievable under the new policy.
    let ids: Vec<_> = archive.manifests().map(|m| m.id.clone()).collect();
    for id in ids {
        archive.retrieve(&id).expect("retrievable after campaign");
    }
    println!("  all {objects} objects verified retrievable after migration");

    if measured_mode {
        run_measured();
    }
}

/// `--measured`: runs a scaled-down §3.2 campaign *live* under the
/// virtual clock for each paper site, extrapolates to site scale, and
/// cross-checks the result against the closed-form model. Emits the
/// four site estimates as `BENCH_reencrypt.json`.
fn run_measured() {
    let paper_months = [6.75, 10.35, 8.3, 0.76];
    let mut table = Table::new(
        "§3.2 measured campaigns (SimClock, extrapolated months)",
        &[
            "archive",
            "read-only",
            "closed-form",
            "paper",
            "+write-back",
            "realistic",
            "agreement",
        ],
    );
    let mut site_entries: Vec<Json> = Vec::new();
    for (site, paper) in ArchiveSite::paper_examples().into_iter().zip(paper_months) {
        let closed = ReencryptionModel::paper_assumptions(site.clone()).estimate();
        let (est, campaign_objects) = measure_site(&site, 1);
        let agreement =
            (est.read_only_months - closed.read_only_months).abs() / closed.read_only_months;
        assert!(
            agreement < AGREEMENT_BOUND,
            "{}: measured {:.4} vs closed-form {:.4} months diverge past {:.0}%",
            site.name,
            est.read_only_months,
            closed.read_only_months,
            AGREEMENT_BOUND * 100.0
        );
        table.row(&[
            site.name.clone(),
            f2(est.read_only_months),
            f2(closed.read_only_months),
            f2(paper),
            f2(est.with_write_months),
            f2(est.realistic_months),
            format!("{:.2}%", agreement * 100.0),
        ]);
        site_entries.push(Json::Obj(vec![
            ("name".into(), Json::Str(site.name.clone())),
            ("capacity_tb".into(), Json::Num(site.capacity_tb)),
            (
                "objects_measured".into(),
                Json::Num(campaign_objects as f64),
            ),
            ("read_only_months".into(), Json::Num(est.read_only_months)),
            ("with_write_months".into(), Json::Num(est.with_write_months)),
            ("realistic_months".into(), Json::Num(est.realistic_months)),
            (
                "closed_form_read_only_months".into(),
                Json::Num(closed.read_only_months),
            ),
            ("paper_read_only_months".into(), Json::Num(paper)),
            ("agreement".into(), Json::Num(agreement)),
        ]));
    }
    table.emit("e3_reencrypt_measured");
    let artifact = Json::Obj(vec![
        ("experiment".into(), Json::Str("reencrypt_measured".into())),
        ("seed".into(), Json::Num(1.0)),
        ("reserved_fraction".into(), Json::Num(0.5)),
        ("agreement_bound".into(), Json::Num(AGREEMENT_BOUND)),
        ("sites".into(), Json::Arr(site_entries)),
    ]);
    match artifact.write_artifact("BENCH_reencrypt.json") {
        Some(path) => println!("measured estimates written to {}", path.display()),
        None => eprintln!("warning: could not write BENCH_reencrypt.json"),
    }
    println!(
        "All four sites: measured campaign agrees with the closed form within {:.0}%",
        AGREEMENT_BOUND * 100.0
    );
}

/// Runs one site's scaled-down live campaign and extrapolates to the
/// site's full capacity. Returns the estimate and the object count.
fn measure_site(
    site: &ArchiveSite,
    seed: u64,
) -> (aeon_store::campaign::ReencryptionEstimate, usize) {
    let profile = ThroughputProfile::from_site_aggregate(site);
    let (cluster, _clock) =
        throughput_in_memory_cluster(&["s0", "s1", "s2", "s3", "s4", "s5"], 1, &profile);
    let config = ArchiveConfig::new(PolicyKind::Encrypted {
        suite: SuiteId::Aes256CtrHmac,
        data: 4,
        parity: 2,
    })
    .with_integrity(IntegrityMode::DigestOnly);
    let mut archive = Archive::with_cluster(config, cluster).expect("archive");
    let objects = 16;
    for i in 0..objects {
        let payload = aeon_bench::reference_payload(64 * 1024, seed.wrapping_add(i as u64));
        archive
            .ingest(&payload, &format!("measured-{i}"))
            .expect("ingest");
    }
    let campaign = archive
        .reencode_all_measured(
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
            0.5,
        )
        .expect("measured campaign");
    (
        campaign.extrapolate(site.capacity_tb * 1e12),
        campaign.objects,
    )
}

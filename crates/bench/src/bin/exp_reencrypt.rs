//! E3 — §3.2: re-encryption campaign durations for real archives.
//!
//! Reproduces the paper's four read-time estimates (HPSS 6.75 months,
//! MARS 10.35, EOS 8.3, Pergamum 0.76) from the same size/bandwidth
//! figures, then extends them with the paper's two penalty factors and a
//! day-by-day simulation with competing ingest. Finally it validates the
//! analytic model against a scaled-down *live* re-encryption of an
//! in-memory archive.

use aeon_bench::{f2, Table};
use aeon_core::{Archive, ArchiveConfig, IntegrityMode, PolicyKind};
use aeon_crypto::SuiteId;
use aeon_store::campaign::{simulate_campaign, ReencryptionModel};
use aeon_store::media::{ArchiveSite, DAYS_PER_MONTH};

fn main() {
    let paper_months = [6.75, 10.35, 8.3, 0.76];
    let mut table = Table::new(
        "§3.2 re-encryption durations (months)",
        &[
            "archive",
            "size(PB)",
            "read(TB/day)",
            "read-only",
            "paper",
            "+write-back",
            "+reserved",
            "sim+ingest",
        ],
    );
    for (site, paper) in ArchiveSite::paper_examples().into_iter().zip(paper_months) {
        let est = ReencryptionModel::paper_assumptions(site.clone()).estimate();
        // Day-by-day simulation with ingest at 25% of write bandwidth.
        let sim = simulate_campaign(&site, site.write_tb_per_day * 0.25)
            .expect("25% ingest leaves bandwidth for migration");
        table.row(&[
            site.name.clone(),
            f2(site.capacity_tb / 1000.0),
            f2(site.read_tb_per_day),
            f2(est.read_only_months),
            f2(paper),
            f2(est.with_write_months),
            f2(est.realistic_months),
            f2(sim.days / DAYS_PER_MONTH),
        ]);
    }
    // The forward-looking exabyte archive.
    let exa = ArchiveSite::exabyte_archive();
    let est = ReencryptionModel::paper_assumptions(exa.clone()).estimate();
    table.row(&[
        exa.name.clone(),
        f2(exa.capacity_tb / 1000.0),
        f2(exa.read_tb_per_day),
        f2(est.read_only_months),
        "-".to_string(),
        f2(est.with_write_months),
        f2(est.realistic_months),
        "-".to_string(),
    ]);
    table.emit("e3_reencrypt");

    println!(
        "Paper's conclusion check: realistic exabyte-scale campaign = {:.1} YEARS\n",
        est.realistic_months / 12.0
    );

    // Live validation at laptop scale: re-encrypt a real in-memory
    // archive and confirm bytes-read ≈ bytes-stored (the model's premise).
    let mut archive = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 4,
            parity: 2,
        })
        .with_integrity(IntegrityMode::DigestOnly),
    )
    .expect("archive");
    let object_size = 64 * 1024;
    let objects = 32;
    for i in 0..objects {
        let payload = aeon_bench::reference_payload(object_size, i as u64);
        archive
            .ingest(&payload, &format!("obj-{i}"))
            .expect("ingest");
    }
    let stored_before = archive.stats().stored_bytes;
    let (count, read, written) = archive
        .reencode_all(PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 4,
            parity: 2,
        })
        .expect("campaign");
    println!("Live campaign: {count} objects, read {read} B, wrote {written} B");
    println!(
        "  model premise check: bytes-read / bytes-stored = {:.3} (expect ~1.0)",
        read as f64 / stored_before as f64
    );
    assert!((read as f64 / stored_before as f64 - 1.0).abs() < 0.05);
    // Every object still retrievable under the new policy.
    let ids: Vec<_> = archive.manifests().map(|m| m.id.clone()).collect();
    for id in ids {
        archive.retrieve(&id).expect("retrievable after campaign");
    }
    println!("  all {objects} objects verified retrievable after migration");
}

//! E9 — §4: archival media economics under secret-sharing expansion.
//!
//! "The high storage costs of secret-shared datastores may be reduced
//! with cheaper and denser archival storage media." This experiment
//! prices a terabyte-century on every medium, then asks what a 5-way
//! secret-shared exabyte archive costs on each — the quantitative form
//! of the paper's DNA/glass/film discussion.

use aeon_bench::{f2, Table};
use aeon_store::media::MediaProfile;

fn main() {
    let mut table = Table::new(
        "Media models: cost, density, lifetime",
        &[
            "medium",
            "$/TB",
            "$/TB-century",
            "TB/cc",
            "lifetime(y)",
            "read(MB/s)",
            "write(MB/s)",
        ],
    );
    for p in MediaProfile::all() {
        table.row(&[
            p.media.to_string(),
            f2(p.cost_usd_per_tb),
            f2(p.usd_per_tb_century()),
            format!("{:.3}", p.tb_per_cc),
            f2(p.lifetime_years),
            f2(p.read_mbps_per_drive),
            f2(p.write_mbps_per_drive),
        ]);
    }
    table.emit("e9_media");

    // A 100 PB logical archive, century horizon, under three encodings.
    let logical_tb = 100_000.0;
    let mut table = Table::new(
        "100 PB logical archive, 100-year cost (millions USD)",
        &["medium", "EC 1.5x", "Shamir 5x", "LRSS ~10x"],
    );
    for p in MediaProfile::all() {
        let cost = |expansion: f64| p.cost_usd(logical_tb * expansion, 100.0) / 1.0e6;
        table.row(&[
            p.media.to_string(),
            f2(cost(1.5)),
            f2(cost(5.0)),
            f2(cost(10.0)),
        ]);
    }
    table.emit("e9_media_expansion");

    // Volume check: where does an exabyte of 5x-shared data physically fit?
    let mut table = Table::new(
        "Physical volume of 1 EB logical at 5x sharing",
        &["medium", "volume(m^3)"],
    );
    for p in MediaProfile::all() {
        let tb = 1.0e6 * 5.0;
        let cc = tb / p.tb_per_cc;
        table.row(&[p.media.to_string(), format!("{:.3}", cc / 1.0e6)]);
    }
    table.emit("e9_media_volume");

    println!("Expected shape (paper): glass/tape make 5x sharing affordable at");
    println!("scale; DNA is the density champion (cubic centimeters for an EB)");
    println!("but synthesis cost keeps it out of reach; film is niche.");
}

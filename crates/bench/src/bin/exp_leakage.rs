//! E7 — local leakage: Shamir vs leakage-resilient secret sharing.
//!
//! The §4 research direction: Shamir over GF(2^8) is vulnerable to
//! local-leakage attacks (Benhamouda et al.); LRSS compilers fix it at a
//! storage cost. We run the parity-leakage attack against both and sweep
//! the LRSS storage overhead.

use aeon_adversary::leakage::parity_leakage_experiment;
use aeon_bench::{f2, f3, Table};
use aeon_secretshare::lrss;

fn main() {
    let trials = 600;

    let mut table = Table::new(
        "Parity-leakage advantage (1 bit/share leaked, secret=0x01)",
        &["sharing", "t", "n", "advantage(plain)", "advantage(LRSS)"],
    );
    for (t, n) in [(2usize, 2usize), (3, 3), (5, 5), (2, 5), (3, 5), (4, 7)] {
        let plain = parity_leakage_experiment(0x7EA7, 0x01, t, n, false, trials);
        let wrapped = parity_leakage_experiment(0x7EA7, 0x01, t, n, true, trials);
        table.row(&[
            format!("{t}-of-{n}"),
            t.to_string(),
            n.to_string(),
            f3(plain.advantage),
            f3(wrapped.advantage),
        ]);
    }
    table.emit("e7_leakage");

    // Storage price of leakage resilience for a 32-byte share.
    let mut table = Table::new(
        "LRSS storage expansion per share (32-byte base share)",
        &["source-len(B)", "stored/share(B)", "expansion(x)"],
    );
    for source_len in [16usize, 32, 64, 128, 256] {
        let params = lrss::LrssParams { source_len };
        let stored = source_len + (source_len + 32) + 32;
        table.row(&[
            source_len.to_string(),
            stored.to_string(),
            f2(lrss::expansion(32, params)),
        ]);
    }
    table.emit("e7_lrss_cost");

    println!("Expected shape (paper/Benhamouda): plain GF(2^8) Shamir leaks for");
    println!("evaluation-point sets whose Lagrange weights XOR to constants");
    println!("(3-of-3, 4-of-7 here: advantage ~1.0) — the attack depends on the");
    println!("point structure, exactly as the LRSS literature says; LRSS drives");
    println!("every configuration down to statistical noise at 3-9x share storage.");
}

//! E13 — the maintenance plan: what a century of operations looks like
//! under a pessimistic cryptanalytic forecast, per policy choice.

use aeon_adversary::CryptanalyticTimeline;
use aeon_bench::Table;
use aeon_core::planner::{plan, Action, PlannerConfig};
use aeon_core::{Archive, ArchiveConfig, IntegrityMode, PolicyKind};
use aeon_crypto::SuiteId;
use aeon_store::media::ArchiveSite;

fn describe(action: &Action) -> String {
    match action {
        Action::StartReencodeCampaign {
            doomed,
            break_year,
            campaign_months,
        } => format!(
            "START RE-ENCODE off {doomed} (breaks {break_year}; campaign ~{campaign_months:.0} mo)"
        ),
        Action::RotateSignatureScheme { scheme, break_year } => {
            format!("rotate signatures off {scheme} (breaks {break_year}), renew all chains")
        }
        Action::RefreshShares => "proactive refresh epoch (all secret-shared objects)".into(),
    }
}

fn main() {
    let timeline = CryptanalyticTimeline::pessimistic_2045();
    let site = ArchiveSite::hpss();

    let scenarios: Vec<(&str, PolicyKind)> = vec![
        (
            "AES+EC archive",
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
        ),
        (
            "Cascade archive",
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
        ),
        (
            "Shamir archive",
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
        ),
    ];

    for (name, policy) in scenarios {
        let mut archive = Archive::in_memory(
            ArchiveConfig::new(policy)
                .with_year(2026)
                .with_integrity(IntegrityMode::DigestOnly),
        )
        .expect("archive");
        archive
            .ingest(b"representative object", "obj")
            .expect("ingest");

        let entries = plan(
            &archive,
            &timeline,
            &site,
            PlannerConfig {
                horizon_year: 2126,
                refresh_every_years: 10, // print-friendly cadence
                campaign_margin_years: 1,
                active_sig_scheme: "wots-v1",
            },
        );
        let mut table = Table::new(
            &format!("Century maintenance plan: {name} (2026-2126, HPSS-scale)"),
            &["year", "action"],
        );
        for e in entries.iter().take(14) {
            table.row(&[e.year.to_string(), describe(&e.action)]);
        }
        if entries.len() > 14 {
            table.row(&[
                "...".to_string(),
                format!("(+{} more refresh epochs)", entries.len() - 14),
            ]);
        }
        table.emit(&format!(
            "e13_plan_{}",
            name.split_whitespace().next().unwrap_or("x").to_lowercase()
        ));
    }

    println!("The planner's message, matching the paper: computational archives");
    println!("carry mandatory multi-year migration campaigns pinned to forecast");
    println!("break years; ITS archives trade them for a steady refresh cadence.");
}

//! E11 — ablations over the design knobs DESIGN.md calls out: cascade
//! depth, erasure parity, LRSS source length, packed width.
//!
//! Each knob trades a cost (storage, CPU, traffic) against a security or
//! availability property; these sweeps show where the knees are.

use aeon_bench::{f2, reference_payload, Table};
use aeon_core::keys::KeyStore;
use aeon_core::PolicyKind;
use aeon_crypto::{ChaChaDrbg, SuiteId};
use aeon_store::durability::{simulate, DurabilityParams};
use std::time::Instant;

fn main() {
    let payload = reference_payload(256 * 1024, 0xAB1A);
    let keys = KeyStore::new([2u8; 32]);
    let mut rng = ChaChaDrbg::from_u64_seed(0xAB1A);

    // --- cascade depth: CPU and ciphertext growth per layer ---
    let mut table = Table::new(
        "Ablation: cascade depth (256 KiB object)",
        &["layers", "encode-ms", "ct-overhead(B)", "breaks-survived"],
    );
    for depth in 1..=4usize {
        let suites: Vec<SuiteId> = (0..depth)
            .map(|i| {
                if i % 2 == 0 {
                    SuiteId::Aes256CtrHmac
                } else {
                    SuiteId::ChaCha20Poly1305
                }
            })
            .collect();
        let policy = PolicyKind::Cascade {
            suites,
            data: 4,
            parity: 2,
        };
        let start = Instant::now();
        let enc = policy
            .encode(&mut rng, &keys, "cascade-abl", &payload)
            .unwrap();
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let stored: usize = enc.shards.iter().map(|s| s.len()).sum();
        let overhead = stored - (payload.len() as f64 * 1.5) as usize;
        table.row(&[
            depth.to_string(),
            f2(ms),
            overhead.to_string(),
            (depth - 1).to_string(), // survives any depth-1 layer breaks
        ]);
    }
    table.emit("e11_cascade_depth");

    // --- erasure parity: durability vs storage ---
    let mut table = Table::new(
        "Ablation: parity count (k=4 data shards, 2% AFR, 7-day repair, 1y)",
        &["parity", "expansion(x)", "P(unavailable)", "P(loss)"],
    );
    for parity in 1..=4usize {
        let est = simulate(
            DurabilityParams {
                // Stress the failure rate so differences are visible in
                // a fast Monte-Carlo run.
                daily_failure_prob: 0.004,
                ..DurabilityParams::archival(4 + parity, 4)
            },
            2000,
            7,
        );
        table.row(&[
            parity.to_string(),
            f2((4 + parity) as f64 / 4.0),
            format!("{:.4}", est.unavailability_events),
            format!("{:.4}", est.loss_probability),
        ]);
    }
    table.emit("e11_parity_durability");

    // --- LRSS source length: leakage budget vs storage ---
    let mut table = Table::new(
        "Ablation: LRSS source length (3-of-5 over 4 KiB object)",
        &[
            "source(B)",
            "stored-total(x payload)",
            "leakage-budget(bits/share)",
        ],
    );
    let small = reference_payload(4096, 1);
    for source_len in [16usize, 32, 64, 128] {
        let policy = PolicyKind::LeakageResilientShamir {
            threshold: 3,
            shares: 5,
            source_len,
        };
        let enc = policy.encode(&mut rng, &keys, "lrss-abl", &small).unwrap();
        let stored: usize = enc.shards.iter().map(|s| s.len()).sum();
        // Residual-entropy budget ≈ 8·source − output − 2·security(64).
        let budget = (8 * source_len) as i64 - 8 * 4096 / 4096 - 128;
        table.row(&[
            source_len.to_string(),
            f2(stored as f64 / small.len() as f64),
            budget.max(0).to_string(),
        ]);
    }
    table.emit("e11_lrss_source");

    // --- packed width: amortization vs reconstruction quorum ---
    let mut table = Table::new(
        "Ablation: packed width k (privacy t=3, n=16)",
        &["pack-k", "expansion(x)", "read-quorum", "tolerates-loss"],
    );
    for pack in [1usize, 2, 4, 8, 12] {
        let policy = PolicyKind::PackedShamir {
            privacy: 3,
            pack,
            shares: 16,
        };
        if policy.validate().is_err() {
            continue;
        }
        table.row(&[
            pack.to_string(),
            f2(policy.expansion()),
            policy.read_threshold().to_string(),
            (16 - policy.read_threshold()).to_string(),
        ]);
    }
    table.emit("e11_packed_width");

    println!("Knees: cascade layers buy break-survival linearly at ~constant");
    println!("cost; parity buys ~an order of magnitude durability per shard;");
    println!("LRSS source length is a pure storage-for-leakage-budget dial;");
    println!("packed width trades reconstruction quorum for storage, at fixed");
    println!("privacy threshold.");
}

//! E6 — proactive-refresh communication cost vs re-encryption I/O.
//!
//! The paper: "share renewal requires every shareholder to send a share
//! to each shareholder. This incurs high communication costs... this may
//! become impractical for the same reasons as re-encryption." This
//! experiment measures the O(n²) refresh traffic directly (per object and
//! extrapolated to archive scale) and compares one full refresh pass
//! against one full re-encryption pass.

use aeon_bench::{f2, Table};
use aeon_crypto::ChaChaDrbg;
use aeon_secretshare::proactive::{self, ProtocolCost};
use aeon_secretshare::shamir;
use aeon_store::campaign::protocol_campaign_months;

fn main() {
    let object_len = 64 * 1024;
    let mut rng = ChaChaDrbg::from_u64_seed(0x2EF2);
    let secret = vec![0xA5u8; object_len];

    // Measured per-object refresh cost as n grows (t = n/2 + 1).
    let mut table = Table::new(
        "Measured Herzberg refresh cost per 64 KiB object",
        &["n", "t", "messages", "bytes-moved", "bytes/object-byte"],
    );
    let mut measured: Vec<(usize, ProtocolCost)> = Vec::new();
    for n in [3usize, 5, 7, 9, 13, 17, 25] {
        let t = n / 2 + 1;
        let mut shares = shamir::split(&mut rng, &secret, t, n).expect("split");
        let cost = proactive::refresh(&mut rng, &mut shares, t).expect("refresh");
        table.row(&[
            n.to_string(),
            t.to_string(),
            cost.messages.to_string(),
            cost.bytes.to_string(),
            f2(cost.bytes as f64 / object_len as f64),
        ]);
        measured.push((n, cost));
    }
    table.emit("e6_refresh_cost_scaling");

    // Quadratic check: bytes ratio between n=25 and n=5 should be ~ (25·24)/(5·4).
    let b5 = measured.iter().find(|(n, _)| *n == 5).expect("n=5").1.bytes as f64;
    let b25 = measured
        .iter()
        .find(|(n, _)| *n == 25)
        .expect("n=25")
        .1
        .bytes as f64;
    let expect = (25.0 * 24.0) / (5.0 * 4.0);
    println!(
        "Quadratic scaling check: bytes(n=25)/bytes(n=5) = {:.1} (theory {:.1})\n",
        b25 / b5,
        expect
    );

    // Archive-scale extrapolation: an 80 PB archive of 64 KiB objects,
    // n = 5 shares each, over a 400 TB/day inter-site network (the HPSS
    // figures), vs one re-encryption pass of the same archive.
    let archive_tb = 80_000.0;
    let objects = (archive_tb * 1e12 / object_len as f64) as u64;
    let per_object_bytes = measured.iter().find(|(n, _)| *n == 5).expect("n=5").1.bytes;
    let mut table = Table::new(
        "One full maintenance pass over an 80 PB archive (400 TB/day fabric)",
        &["operation", "traffic(PB)", "months"],
    );
    let refresh_months = protocol_campaign_months(objects, per_object_bytes, 400.0);
    let refresh_pb = objects as f64 * per_object_bytes as f64 / 1e15;
    table.row(&[
        "proactive refresh (n=5)".to_string(),
        f2(refresh_pb),
        f2(refresh_months),
    ]);
    // Re-encryption: read all + write all of the 5x-expanded archive.
    let reencrypt_pb = archive_tb * 5.0 * 2.0 / 1000.0;
    let reencrypt_months = protocol_campaign_months(objects, (object_len * 5 * 2) as u64, 400.0);
    table.row(&[
        "re-encryption (read+write 5x archive)".to_string(),
        f2(reencrypt_pb),
        f2(reencrypt_months),
    ]);
    table.emit("e6_refresh_vs_reencrypt");

    println!("Expected shape (paper): refresh of a secret-shared archive moves");
    println!("n(n-1)x the share bytes — comparable to (or worse than) re-encrypting,");
    println!("which is why the paper calls frequent whole-archive renewal impractical.");
}

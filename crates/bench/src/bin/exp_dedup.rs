//! E-dedup — content-defined dedup vs the §3.2 maintenance bill.
//!
//! The paper's central arithmetic is that campaign time scales with
//! *stored* bytes. Content-addressed dedup attacks exactly that factor:
//! a block shared by many objects is read and re-encoded once per
//! campaign, not once per object. This experiment builds three corpus
//! models with very different sharing profiles — versioned snapshots,
//! packages linking shared libraries, and an append-only log snapshotted
//! over time — ingests each into twin archives (dedup on / dedup off)
//! over identical throughput-charged clusters, runs the same re-encode
//! campaign on both under the virtual clock, and checks the measured
//! law:
//!
//! ```text
//! campaign_time(dedup) ≈ campaign_time(plain) × (stored_dedup / stored_plain)
//! ```
//!
//! The run asserts the two sides agree within 10%; the residual is the
//! Merkle-tree block overhead plus per-block rounding, both of which the
//! table reports. Results land in `BENCH_dedup.json`.

use aeon_bench::{f2, f3, CliArgs, Json, Table};
use aeon_cas::ChunkerParams;
use aeon_core::dedup::DedupConfig;
use aeon_core::{Archive, ArchiveConfig, IntegrityMode, PolicyKind};
use aeon_crypto::{ChaChaDrbg, CryptoRng, SuiteId};
use aeon_store::clock::SimDuration;
use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};

/// A named set of (object name, payload) pairs.
type Corpus = Vec<(String, Vec<u8>)>;

/// Measured campaign-time ratio must sit within this bound of the
/// stored-bytes ratio.
const PROPORTIONALITY_BOUND: f64 = 0.10;

const SITES: [&str; 6] = ["s0", "s1", "s2", "s3", "s4", "s5"];

fn bench_chunker() -> ChunkerParams {
    ChunkerParams {
        min_size: 4 << 10,
        target_size: 16 << 10,
        max_size: 64 << 10,
        seed: 0xAE0_CD0,
    }
}

fn old_policy() -> PolicyKind {
    PolicyKind::Encrypted {
        suite: SuiteId::Aes256CtrHmac,
        data: 4,
        parity: 2,
    }
}

fn new_policy() -> PolicyKind {
    PolicyKind::Cascade {
        suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
        data: 4,
        parity: 2,
    }
}

fn rand_bytes(rng: &mut ChaChaDrbg, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Versioned snapshots: one ~256 KiB document, each version inserting a
/// few KiB at a random offset. Nearly everything is shared between
/// adjacent versions.
fn corpus_versions(rng: &mut ChaChaDrbg, versions: usize) -> Corpus {
    let mut doc = rand_bytes(rng, 256 << 10);
    let mut out = Vec::with_capacity(versions);
    for v in 0..versions {
        out.push((format!("doc-v{v}"), doc.clone()));
        let at = (rng.next_u64() as usize) % doc.len();
        let insert = rand_bytes(rng, 4 << 10);
        doc.splice(at..at, insert);
    }
    out
}

/// Shared libraries: each "package" links a random subset of a common
/// pool of library segments plus a slab of unique application code.
fn corpus_libraries(rng: &mut ChaChaDrbg, packages: usize) -> Corpus {
    let pool: Vec<Vec<u8>> = (0..8).map(|_| rand_bytes(rng, 48 << 10)).collect();
    let mut out = Vec::with_capacity(packages);
    for p in 0..packages {
        let mut bytes = Vec::new();
        for lib in &pool {
            if rng.next_u64().is_multiple_of(2) {
                bytes.extend_from_slice(lib);
            }
        }
        bytes.extend_from_slice(&rand_bytes(rng, 32 << 10));
        out.push((format!("pkg-{p}"), bytes));
    }
    out
}

/// Log-append: an ever-growing log snapshotted after each append burst;
/// snapshot `i` is a strict prefix of snapshot `i+1`.
fn corpus_log(rng: &mut ChaChaDrbg, snapshots: usize) -> Corpus {
    let mut log = Vec::new();
    let mut out = Vec::with_capacity(snapshots);
    for s in 0..snapshots {
        log.extend_from_slice(&rand_bytes(rng, 96 << 10));
        out.push((format!("log-snap{s}"), log.clone()));
    }
    out
}

struct CorpusRun {
    name: &'static str,
    logical_bytes: u64,
    plain_stored: u64,
    dedup_stored: u64,
    stored_ratio: f64,
    dedup_ratio: f64,
    plain_campaign_s: f64,
    dedup_campaign_s: f64,
    time_ratio: f64,
    deviation: f64,
}

fn build_archive(dedup: Option<DedupConfig>, seed: u64) -> (Archive, aeon_store::clock::SimClock) {
    let profile = ThroughputProfile::new(SimDuration::ZERO, 1e9, 1e9);
    let (cluster, clock) = throughput_in_memory_cluster(&SITES, 1, &profile);
    let mut config = ArchiveConfig::new(old_policy())
        .with_integrity(IntegrityMode::DigestOnly)
        .with_year(2030);
    config.rng_seed = seed;
    if let Some(d) = dedup {
        config = config.with_dedup(d);
    }
    (
        Archive::with_cluster(config, cluster).expect("archive"),
        clock,
    )
}

/// Ingests the corpus, runs the re-encode campaign, and returns
/// (stored bytes at campaign start, campaign virtual seconds).
fn run_campaign(
    archive: &mut Archive,
    clock: &aeon_store::clock::SimClock,
    corpus: &[(String, Vec<u8>)],
) -> (u64, f64) {
    for (name, data) in corpus {
        archive.ingest(data, name).expect("ingest");
    }
    let stored = archive.stats().stored_bytes;
    let start = clock.now();
    archive.reencode_all(new_policy()).expect("campaign");
    let elapsed = (clock.now() - start).as_secs_f64();
    // Campaign correctness: every object must survive the migration.
    let ids: Vec<_> = archive.manifests().map(|m| m.id.clone()).collect();
    for id in &ids {
        archive.retrieve(id).expect("retrievable after campaign");
    }
    (stored, elapsed)
}

fn run_corpus(name: &'static str, corpus: Corpus, chunker: ChunkerParams) -> CorpusRun {
    let logical_bytes: u64 = corpus.iter().map(|(_, d)| d.len() as u64).sum();
    let dedup_cfg = DedupConfig {
        chunker,
        index_capacity: 1 << 16,
        fanout: 64,
    };

    let (mut plain, plain_clock) = build_archive(None, 0xD0_0D);
    let (plain_stored, plain_campaign_s) = run_campaign(&mut plain, &plain_clock, &corpus);

    let (mut dedup, dedup_clock) = build_archive(Some(dedup_cfg), 0xD0_0D);
    let (dedup_stored, dedup_campaign_s) = run_campaign(&mut dedup, &dedup_clock, &corpus);
    let stats = dedup.dedup_stats().expect("dedup stats");

    let stored_ratio = dedup_stored as f64 / plain_stored as f64;
    let time_ratio = dedup_campaign_s / plain_campaign_s;
    let deviation = (time_ratio - stored_ratio).abs() / stored_ratio;
    CorpusRun {
        name,
        logical_bytes,
        plain_stored,
        dedup_stored,
        stored_ratio,
        dedup_ratio: stats.dedup_ratio,
        plain_campaign_s,
        dedup_campaign_s,
        time_ratio,
        deviation,
    }
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.flag("--quick");
    let scale = if quick { 1 } else { 3 };
    let mut rng = ChaChaDrbg::from_u64_seed(0xDED0);

    let corpora: Vec<(&'static str, Corpus)> = vec![
        ("versions", corpus_versions(&mut rng, 4 * scale)),
        ("libraries", corpus_libraries(&mut rng, 6 * scale)),
        ("log-append", corpus_log(&mut rng, 4 * scale)),
    ];

    let mut table = Table::new(
        "dedup ratio x §3.2 campaign time (virtual clock)",
        &[
            "corpus",
            "logical(KiB)",
            "stored plain(KiB)",
            "stored dedup(KiB)",
            "stored ratio",
            "campaign plain(s)",
            "campaign dedup(s)",
            "time ratio",
            "deviation",
        ],
    );
    let mut entries: Vec<Json> = Vec::new();
    let chunker = bench_chunker();
    let mut worst = 0.0f64;
    for (name, corpus) in corpora {
        let run = run_corpus(name, corpus, chunker);
        assert!(
            run.deviation < PROPORTIONALITY_BOUND,
            "{}: campaign time ratio {:.3} strays {:.1}% from stored ratio {:.3} (bound {:.0}%)",
            run.name,
            run.time_ratio,
            run.deviation * 100.0,
            run.stored_ratio,
            PROPORTIONALITY_BOUND * 100.0
        );
        worst = worst.max(run.deviation);
        table.row(&[
            run.name.to_string(),
            f2(run.logical_bytes as f64 / 1024.0),
            f2(run.plain_stored as f64 / 1024.0),
            f2(run.dedup_stored as f64 / 1024.0),
            f3(run.stored_ratio),
            f3(run.plain_campaign_s),
            f3(run.dedup_campaign_s),
            f3(run.time_ratio),
            format!("{:.2}%", run.deviation * 100.0),
        ]);
        entries.push(Json::Obj(vec![
            ("corpus".into(), Json::Str(run.name.into())),
            ("logical_bytes".into(), Json::Num(run.logical_bytes as f64)),
            (
                "plain_stored_bytes".into(),
                Json::Num(run.plain_stored as f64),
            ),
            (
                "dedup_stored_bytes".into(),
                Json::Num(run.dedup_stored as f64),
            ),
            ("stored_ratio".into(), Json::Num(run.stored_ratio)),
            ("dedup_ratio_plaintext".into(), Json::Num(run.dedup_ratio)),
            ("plain_campaign_s".into(), Json::Num(run.plain_campaign_s)),
            ("dedup_campaign_s".into(), Json::Num(run.dedup_campaign_s)),
            ("time_ratio".into(), Json::Num(run.time_ratio)),
            ("deviation".into(), Json::Num(run.deviation)),
        ]));
    }
    table.emit("e_dedup");
    println!(
        "Campaign time tracks stored bytes: worst deviation {:.2}% (bound {:.0}%)",
        worst * 100.0,
        PROPORTIONALITY_BOUND * 100.0
    );

    let artifact = Json::Obj(vec![
        ("experiment".into(), Json::Str("dedup".into())),
        ("seed".into(), Json::Num(0xDED0 as f64)),
        ("quick".into(), Json::Num(if quick { 1.0 } else { 0.0 })),
        (
            "chunker".into(),
            Json::Obj(vec![
                ("min_size".into(), Json::Num(chunker.min_size as f64)),
                ("target_size".into(), Json::Num(chunker.target_size as f64)),
                ("max_size".into(), Json::Num(chunker.max_size as f64)),
            ]),
        ),
        (
            "proportionality_bound".into(),
            Json::Num(PROPORTIONALITY_BOUND),
        ),
        ("corpora".into(), Json::Arr(entries)),
    ]);
    match artifact.write_artifact("BENCH_dedup.json") {
        Some(path) => println!("results written to {}", path.display()),
        None => eprintln!("warning: could not write BENCH_dedup.json"),
    }
}

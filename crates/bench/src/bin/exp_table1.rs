//! E2 — Table 1: system comparison, measured.
//!
//! Reproduces the paper's Table 1 by instantiating each surveyed system
//! as an `aeon` profile, ingesting a reference object, and reporting the
//! measured storage expansion plus the confidentiality classification of
//! both legs (in transit / at rest).

use aeon_bench::{f2, reference_payload, Table};

fn main() {
    let payload = reference_payload(256 * 1024, 0x7AB1);
    let rows = aeon_core::table1(&payload).expect("table 1 profiles");

    let mut table = Table::new(
        "Table 1 (measured): confidentiality and storage cost by system",
        &[
            "system",
            "transit-conf",
            "at-rest-conf",
            "expansion(x)",
            "cost-bucket",
            "paper-says",
        ],
    );
    let paper = |name: &str| match name {
        "ArchiveSafeLT" => "Comp/Comp/Low",
        "AONT-RS" => "Comp/Comp/Low",
        "HasDPSS" => "Comp/ITS/High",
        "LINCOS" => "ITS/ITS/High",
        "PASIS" => "Comp/ITS*/Low-High",
        "POTSHARDS" => "Comp/ITS/High",
        "VSR Archive" => "Comp/ITS/High",
        "AWS/Azure/GCP" => "Comp/Comp/Low",
        _ => "?",
    };
    for r in &rows {
        table.row(&[
            r.system.to_string(),
            r.in_transit.to_string(),
            r.at_rest.to_string(),
            f2(r.expansion),
            r.cost.to_string(),
            paper(r.system).to_string(),
        ]);
    }
    table.emit("e2_table1");

    // Agreement check: every row's classification must match the paper.
    use aeon_core::CostBucket;
    use aeon_crypto::SecurityLevel as L;
    let expect: &[(&str, L, L, &[CostBucket])] = &[
        (
            "ArchiveSafeLT",
            L::Computational,
            L::Computational,
            &[CostBucket::Low],
        ),
        (
            "AONT-RS",
            L::Computational,
            L::Computational,
            &[CostBucket::Low],
        ),
        (
            "HasDPSS",
            L::Computational,
            L::InformationTheoretic,
            &[CostBucket::High],
        ),
        (
            "LINCOS",
            L::InformationTheoretic,
            L::InformationTheoretic,
            &[CostBucket::High],
        ),
        (
            "PASIS",
            L::Computational,
            L::InformationTheoretic,
            &[CostBucket::Low, CostBucket::Medium, CostBucket::High],
        ),
        (
            "POTSHARDS",
            L::Computational,
            L::InformationTheoretic,
            &[CostBucket::High],
        ),
        (
            "VSR Archive",
            L::Computational,
            L::InformationTheoretic,
            &[CostBucket::High],
        ),
        (
            "AWS/Azure/GCP",
            L::Computational,
            L::Computational,
            &[CostBucket::Low],
        ),
    ];
    println!("Agreement with paper Table 1:");
    let mut all_ok = true;
    for (name, transit, rest, costs) in expect {
        let row = rows.iter().find(|r| r.system == *name).expect("row");
        let ok = row.in_transit == *transit && row.at_rest == *rest && costs.contains(&row.cost);
        all_ok &= ok;
        println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
    }
    assert!(all_ok, "Table 1 classifications diverged from the paper");
}

//! E1 — Figure 1: storage cost vs. security level, measured.
//!
//! The paper's Figure 1 is a qualitative quadrant chart. This experiment
//! produces the quantitative version: each encoding is run over a 1 MiB
//! high-entropy payload and its *actual* stored-bytes expansion is
//! plotted against the ordinal security classification.

use aeon_bench::{f2, reference_payload, Table};
use aeon_crypto::ChaChaDrbg;

fn main() {
    let payload = reference_payload(256 * 1024, 0xF161);
    let mut rng = ChaChaDrbg::from_u64_seed(0xF161);
    let points = aeon_core::figure1_points(&mut rng, &payload).expect("figure 1 encodings");

    let mut table = Table::new(
        "Figure 1 (measured): storage cost vs security level, 256 KiB object",
        &[
            "encoding",
            "expansion(x)",
            "security-class",
            "security-ordinal",
        ],
    );
    let mut sorted = points.clone();
    sorted.sort_by(|a, b| {
        a.security_ordinal
            .cmp(&b.security_ordinal)
            .then(a.expansion.partial_cmp(&b.expansion).expect("finite"))
    });
    for p in &sorted {
        table.row(&[
            p.encoding.to_string(),
            f2(p.expansion),
            p.level.to_string(),
            p.security_ordinal.to_string(),
        ]);
    }
    table.emit("e1_fig1");

    // The paper's qualitative claims, checked quantitatively.
    let find = |name: &str| {
        points
            .iter()
            .find(|p| p.encoding == name)
            .expect("encoding present")
    };
    let checks = [
        (
            "erasure coding is the cheapest",
            find("Erasure coding").expansion <= find("Replication").expansion,
        ),
        (
            // Figure 1 puts secret sharing in the replication cost class:
            // each share is as large as a full replica (per-copy cost 1.0x).
            "secret sharing costs like replication (per copy)",
            (find("Secret sharing").expansion / 5.0 - find("Replication").expansion / 3.0).abs()
                < 0.05,
        ),
        (
            "packed sharing sits between EC and full sharing",
            find("Erasure coding").expansion < find("Packed secret sharing").expansion
                && find("Packed secret sharing").expansion < find("Secret sharing").expansion,
        ),
        (
            "LRSS pays extra storage for leakage resilience",
            find("Leakage-resilient secret sharing").expansion > find("Secret sharing").expansion,
        ),
        (
            "entropic encryption is near-EC cost",
            (find("Entropically secure encryption").expansion - find("Erasure coding").expansion)
                .abs()
                < 0.1,
        ),
    ];
    println!("Shape checks vs paper:");
    for (claim, ok) in checks {
        println!("  [{}] {}", if ok { "PASS" } else { "FAIL" }, claim);
    }
}

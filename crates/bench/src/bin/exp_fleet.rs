//! E-fleet — durability under a repair-bandwidth budget.
//!
//! The paper's maintenance arithmetic (§3.2) says repair is a
//! bandwidth-metered campaign, not a free background activity. This
//! experiment races the loss process against a budgeted repair drain on
//! the virtual clock: each swept configuration injects whole-node wipes
//! and latent per-shard losses epoch by epoch, then drains the repair
//! queue under an explicit bytes-moved budget whose bandwidth is shared
//! with foreground traffic through the `BandwidthScheduler`
//! reservation. Every configuration runs twice — once with the
//! most-degraded-first priority queue and once FIFO — at the identical
//! budget, so the sweep measures what the *queue discipline alone* buys
//! in durability (objects lost, time to first loss).
//!
//! The run asserts that priority ordering loses fewer objects than FIFO
//! in at least one tight-budget configuration. Results land in
//! `BENCH_fleet.json`.

use aeon_bench::{f2, CliArgs, Json, Table};
use aeon_core::{
    Archive, ArchiveConfig, FleetSimConfig, FleetSimReport, IntegrityMode, PolicyKind,
    RepairQueueOrder,
};
use aeon_store::clock::{SimDuration, SimTime};
use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};

const SITES: [&str; 6] = ["s0", "s1", "s2", "s3", "s4", "s5"];
const SWEEP_SEED: u64 = 0xF1EE7;

/// A loss regime: how hostile the environment is per 30-day epoch.
struct Regime {
    name: &'static str,
    node_wipe_prob: f64,
    shard_loss_prob: f64,
}

fn regimes() -> Vec<Regime> {
    vec![
        Regime {
            name: "calm",
            node_wipe_prob: 0.01,
            shard_loss_prob: 0.02,
        },
        Regime {
            name: "harsh",
            node_wipe_prob: 0.05,
            shard_loss_prob: 0.10,
        },
    ]
}

fn policies() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("rep-3", PolicyKind::Replication { copies: 3 }),
        ("rs-2+2", PolicyKind::ErasureCoded { data: 2, parity: 2 }),
        ("rs-4+2", PolicyKind::ErasureCoded { data: 4, parity: 2 }),
    ]
}

fn order_name(order: RepairQueueOrder) -> &'static str {
    match order {
        RepairQueueOrder::Priority => "priority",
        RepairQueueOrder::Fifo => "fifo",
    }
}

/// Builds a fresh archive over a throughput-charged cluster (archival
/// disk figures: 4 ms positioning, 60 MB/s sustained) and ingests the
/// shared corpus, so every run starts from the identical fleet state.
fn build_fleet(policy: &PolicyKind, objects: usize) -> Archive {
    let profile = ThroughputProfile::new(SimDuration::from_millis(4), 60e6, 60e6);
    let (cluster, _clock) = throughput_in_memory_cluster(&SITES, 1, &profile);
    let config = ArchiveConfig::new(policy.clone())
        .with_integrity(IntegrityMode::DigestOnly)
        .with_year(2031);
    let mut archive = Archive::with_cluster(config, cluster).expect("archive");
    for i in 0..objects {
        let payload = vec![(i % 250) as u8 + 1; 1024 + i * 173];
        archive
            .ingest(&payload, &format!("fleet-{i:03}"))
            .expect("ingest");
    }
    archive
}

fn run_one(
    policy: &PolicyKind,
    objects: usize,
    epochs: usize,
    regime: &Regime,
    budget: u64,
    order: RepairQueueOrder,
) -> FleetSimReport {
    let mut archive = build_fleet(policy, objects);
    let cfg = FleetSimConfig {
        seed: SWEEP_SEED,
        epochs,
        epoch: SimDuration::from_days(30),
        node_wipe_prob: regime.node_wipe_prob,
        shard_loss_prob: regime.shard_loss_prob,
        repair_bytes_per_epoch: budget,
        reserved_foreground: 0.2,
        order,
    };
    archive.run_fleet_sim(&cfg)
}

fn days(t: SimTime) -> f64 {
    t.since(SimTime::ZERO).as_days_f64()
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.flag("--quick");
    let (objects, epochs) = if quick { (20, 6) } else { (40, 12) };
    // Tight: roughly two object repairs' worth of moved bytes per
    // epoch, far under the harsh-regime degradation rate. Open: drain
    // everything every epoch.
    let budgets: [(&str, u64); 2] = [("tight", 24_000), ("open", u64::MAX)];

    let mut table = Table::new(
        "fleet durability: loss regime x repair budget x queue order (virtual clock)",
        &[
            "regime",
            "policy",
            "budget",
            "order",
            "lost",
            "first loss(d)",
            "repaired",
            "fails",
            "moved(KiB)",
            "fg(s)",
        ],
    );
    let mut entries: Vec<Json> = Vec::new();
    let mut priority_wins = 0usize;
    let mut tight_pairs = 0usize;

    for regime in regimes() {
        for (policy_name, policy) in policies() {
            for (budget_name, budget) in budgets {
                let mut pair: Vec<(RepairQueueOrder, FleetSimReport)> = Vec::new();
                for order in [RepairQueueOrder::Priority, RepairQueueOrder::Fifo] {
                    let report = run_one(&policy, objects, epochs, &regime, budget, order);
                    table.row(&[
                        regime.name.to_string(),
                        policy_name.to_string(),
                        budget_name.to_string(),
                        order_name(order).to_string(),
                        format!("{}/{}", report.objects_lost, report.objects),
                        report
                            .first_loss_time
                            .map_or_else(|| "-".to_string(), |t| f2(days(t))),
                        report.repaired.to_string(),
                        report.repair_failures.to_string(),
                        f2(report.bytes_moved as f64 / 1024.0),
                        f2(report.foreground_time.as_secs_f64()),
                    ]);
                    entries.push(Json::Obj(vec![
                        ("regime".into(), Json::Str(regime.name.into())),
                        ("policy".into(), Json::Str(policy_name.into())),
                        ("budget".into(), Json::Str(budget_name.into())),
                        (
                            "budget_bytes".into(),
                            Json::Num(if budget == u64::MAX {
                                -1.0
                            } else {
                                budget as f64
                            }),
                        ),
                        ("order".into(), Json::Str(order_name(order).into())),
                        ("objects".into(), Json::Num(report.objects as f64)),
                        ("objects_lost".into(), Json::Num(report.objects_lost as f64)),
                        (
                            "first_loss_epoch".into(),
                            Json::Num(report.first_loss_epoch.map_or(-1.0, |e| e as f64)),
                        ),
                        (
                            "first_loss_days".into(),
                            Json::Num(report.first_loss_time.map_or(-1.0, days)),
                        ),
                        ("repaired".into(), Json::Num(report.repaired as f64)),
                        (
                            "repair_failures".into(),
                            Json::Num(report.repair_failures as f64),
                        ),
                        ("bytes_moved".into(), Json::Num(report.bytes_moved as f64)),
                        (
                            "foreground_s".into(),
                            Json::Num(report.foreground_time.as_secs_f64()),
                        ),
                        ("elapsed_days".into(), Json::Num(days(report.elapsed))),
                    ]));
                    pair.push((order, report));
                }
                if budget != u64::MAX {
                    tight_pairs += 1;
                    let lost_of = |o: RepairQueueOrder| {
                        pair.iter().find(|(q, _)| *q == o).unwrap().1.objects_lost
                    };
                    if lost_of(RepairQueueOrder::Priority) < lost_of(RepairQueueOrder::Fifo) {
                        priority_wins += 1;
                    }
                }
            }
        }
    }

    table.emit("e_fleet");
    assert!(
        priority_wins >= 1,
        "most-degraded-first must beat FIFO in at least one tight-budget \
         configuration ({priority_wins}/{tight_pairs} wins)"
    );
    println!(
        "Priority queue beat FIFO at the same budget in {priority_wins}/{tight_pairs} \
         tight-budget configurations"
    );

    let artifact = Json::Obj(vec![
        ("experiment".into(), Json::Str("fleet".into())),
        ("seed".into(), Json::Num(SWEEP_SEED as f64)),
        ("quick".into(), Json::Num(if quick { 1.0 } else { 0.0 })),
        ("objects".into(), Json::Num(objects as f64)),
        ("epochs".into(), Json::Num(epochs as f64)),
        ("reserved_foreground".into(), Json::Num(0.2)),
        ("priority_wins".into(), Json::Num(priority_wins as f64)),
        ("tight_pairs".into(), Json::Num(tight_pairs as f64)),
        ("runs".into(), Json::Arr(entries)),
    ]);
    match artifact.write_artifact("BENCH_fleet.json") {
        Some(path) => println!("results written to {}", path.display()),
        None => eprintln!("warning: could not write BENCH_fleet.json"),
    }
}

//! E4 — §3.2: harvest-now-decrypt-later across policies.
//!
//! The paper's showstopper claim: "re-encryption does nothing to protect
//! portions of any stolen ciphertext." We harvest each policy's shards in
//! 2026 (a partial haul and a full haul), then replay the stash against
//! the cryptanalytic timeline at 2040/2050/2070 and report what fraction
//! of the plaintext falls.

use aeon_adversary::CryptanalyticTimeline;
use aeon_bench::{reference_payload, Table};
use aeon_core::keys::KeyStore;
use aeon_core::{PolicyKind, Recovery};
use aeon_crypto::{ChaChaDrbg, SuiteId};

fn recovery_pct(r: &Recovery) -> f64 {
    match r {
        Recovery::Full(_) => 100.0,
        Recovery::Partial(f) => f * 100.0,
        Recovery::Nothing => 0.0,
    }
}

fn main() {
    let payload = reference_payload(64 * 1024, 0x44D1);
    let keys = KeyStore::new([3u8; 32]);
    let mut rng = ChaChaDrbg::from_u64_seed(0x44D1);
    let timeline = CryptanalyticTimeline::pessimistic_2045(); // AES 2045, ChaCha 2060

    let policies: Vec<(&str, PolicyKind)> = vec![
        (
            "AES+EC (cloud)",
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
        ),
        (
            "Cascade (ArchiveSafeLT)",
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
        ),
        ("AONT-RS", PolicyKind::AontRs { data: 4, parity: 2 }),
        (
            "Shamir 3-of-5",
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
        ),
        ("Entropic+EC", PolicyKind::Entropic { data: 4, parity: 2 }),
    ];

    let mut table = Table::new(
        "HNDL: % of plaintext recovered from 2026 harvest (partial haul = 2 shards / full haul = all)",
        &["policy", "haul", "2040", "2050", "2070"],
    );

    for (name, policy) in &policies {
        let enc = policy
            .encode(&mut rng, &keys, &format!("hndl-{name}"), &payload)
            .expect("encode");
        let n = policy.shard_count();
        let hauls: [(&str, Vec<Option<Vec<u8>>>); 2] = [
            ("2 shards", {
                let mut v: Vec<Option<Vec<u8>>> = vec![None; n];
                v[0] = Some(enc.shards[0].clone());
                v[1] = Some(enc.shards[1].clone());
                v
            }),
            (
                "all",
                enc.shards.iter().cloned().map(Some).collect::<Vec<_>>(),
            ),
        ];
        for (haul_name, stolen) in &hauls {
            let cells: Vec<String> = [2040u32, 2050, 2070]
                .iter()
                .map(|&year| {
                    let r = policy.hndl_recover(
                        &keys,
                        &format!("hndl-{name}"),
                        stolen,
                        &enc.meta,
                        &timeline,
                        year,
                    );
                    format!("{:.0}%", recovery_pct(&r))
                })
                .collect();
            table.row(&[
                name.to_string(),
                haul_name.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
    }
    table.emit("e4_hndl");

    println!("Expected shape (paper):");
    println!("  - AES+EC full haul: 0% before 2045, 100% after — re-encryption can't help");
    println!("  - Cascade: survives 2050 (ChaCha stands), falls by 2070");
    println!("  - AONT-RS full haul: 100% even in 2040 (threshold = decryption, no key)");
    println!("  - Shamir sub-threshold haul: 0% forever; full haul: 100% always (ITS is about thresholds)");
    println!("  - Entropic: 0% at all years for high-entropy payloads");
}

//! E12 — the in-transit leg of Table 1, executed: ship the same object
//! over a computational channel and an ITS channel, tap both, and replay
//! the taps against the future.
//!
//! Also prices the ITS channel: QKD key-rate seconds per shipped
//! gigabyte, the "infrastructure cost" the paper charges against LINCOS.

use aeon_bench::{f2, reference_payload, Table};
use aeon_channel::qkd::QkdLink;
use aeon_core::transfer::{ship_computational, ship_its, tapped_wan};
use aeon_core::{Archive, ArchiveConfig, IntegrityMode, PolicyKind};

fn main() {
    let payload = reference_payload(128 * 1024, 0x7247);
    let mut archive = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        })
        .with_integrity(IntegrityMode::DigestOnly),
    )
    .expect("archive");
    let id = archive.ingest(&payload, "in-transit").expect("ingest");

    let mut table = Table::new(
        "In-transit shipment of a 128 KiB object (5 Shamir shards)",
        &[
            "channel",
            "wire-bytes",
            "overhead(%)",
            "link-seconds",
            "pad-bytes",
            "tap-frames",
        ],
    );

    let (mut link, tap) = tapped_wan();
    let (_, rep_comp) =
        ship_computational(&archive, &id, &mut link, 0x7247).expect("computational shipment");
    table.row(&[
        "DH+AEAD (TLS-like)".to_string(),
        rep_comp.wire_bytes.to_string(),
        f2((rep_comp.wire_bytes as f64 / rep_comp.payload_bytes as f64 - 1.0) * 100.0),
        format!("{:.3}", rep_comp.link_seconds),
        "0".to_string(),
        tap.frames().to_string(),
    ]);

    let (mut link, tap) = tapped_wan();
    let mut qkd = QkdLink::metro_reference();
    let (_, rep_its) = ship_its(&archive, &id, &mut qkd, &mut link, 0x7247).expect("ITS shipment");
    table.row(&[
        "QKD-fed OTP".to_string(),
        rep_its.wire_bytes.to_string(),
        f2((rep_its.wire_bytes as f64 / rep_its.payload_bytes as f64 - 1.0) * 100.0),
        format!("{:.3}", rep_its.link_seconds),
        rep_its.pad_bytes.to_string(),
        tap.frames().to_string(),
    ]);
    table.emit("e12_transit");

    // The QKD bill at archive scale: seconds of key generation per GB.
    let qkd_ref = QkdLink::metro_reference();
    let secs_per_gb = qkd_ref.seconds_for_payload(1 << 30, 64 * 1024);
    println!(
        "QKD key-rate bill: {:.0} s/GB at 1 Mbit/s secret-key rate — {:.1} days per TB.",
        secs_per_gb,
        secs_per_gb * 1024.0 / 86_400.0
    );
    println!(
        "QKD infrastructure: ${:.0}k install + ${:.0}k/year per link.",
        100.0, 20.0
    );
    println!("\nExpected shape (paper): the computational channel is effectively");
    println!("free but its tap is harvest-now-decrypt-later material; the ITS");
    println!("channel's tap is provably useless, and the cost shows up instead");
    println!("as key rate (days/TB) and dedicated infrastructure — LINCOS's bill.");
}

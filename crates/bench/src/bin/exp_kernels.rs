//! Kernel-throughput baseline: GB/s for every GF(2^8) dispatch tier.
//!
//! Measures each supported [`Kernel`] tier (scalar, SWAR, and — when the
//! host has them — SSSE3/AVX2) on the three slice operations the archive
//! hot paths use: `mul_slice`, `mul_add_slice`, and the fused
//! `mul_add_rows`, at 4 KiB / 64 KiB / 1 MiB buffers. Emits
//! `BENCH_kernels.json` so future PRs diff kernel throughput against a
//! pinned baseline instead of a feeling.
//!
//! Timing is min-of-N over repeated sweeps: on a shared host the
//! *minimum* is the reproducible number — every slower sample is the
//! kernel plus someone else's noise. `--quick` (CI) cuts the per-cell
//! byte budget and repetitions; `--rows N` changes the fused-row fan-in
//! (default 8, a typical RS data width).

use std::hint::black_box;
use std::time::Instant;

use aeon_bench::{f2, reference_payload, CliArgs, Json, Table};
use aeon_gf::slice::{mul_add_rows_on, Gf256MulTable};
use aeon_gf::{Gf256, Kernel};

/// Buffer sizes every cell is measured at.
const SIZES: [usize; 3] = [4 * 1024, 64 * 1024, 1024 * 1024];

/// A generic odd scalar (not 0, 1, or a power of two) so no tier hits a
/// degenerate fast path.
const SCALAR: u8 = 0xB7;

struct Cell {
    kernel: &'static str,
    op: &'static str,
    size: usize,
    gbs: f64,
}

/// Times `work` (which processes `bytes_per_call` bytes per invocation)
/// and returns GB/s from the fastest of `reps` timed sweeps.
fn best_gbs(bytes_per_call: usize, budget: usize, reps: usize, mut work: impl FnMut()) -> f64 {
    let iters = (budget / bytes_per_call).max(1);
    // Warmup sweep: faults pages, warms caches and the branch predictor.
    for _ in 0..iters.min(16) {
        work();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            work();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (iters * bytes_per_call) as f64 / best / 1e9
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.flag("--quick");
    let row_count = args.usize_value("--rows", 8);
    let budget = if quick { 8 << 20 } else { 32 << 20 };
    let reps = if quick { 3 } else { 7 };

    let table = Gf256MulTable::new(Gf256::new(SCALAR));
    let max = *SIZES.last().expect("sizes");
    let src = reference_payload(max, 0xAE0);
    let rows_data: Vec<Vec<u8>> = (0..row_count)
        .map(|r| reference_payload(max, 0xAE1 + r as u64))
        .collect();
    // Row coefficients cycle through distinct non-trivial scalars.
    let row_tables: Vec<Gf256MulTable> = (0..row_count)
        .map(|r| Gf256MulTable::new(Gf256::new(SCALAR.wrapping_add(2 * r as u8 + 2))))
        .collect();
    let mut dst = vec![0u8; max];

    let mut cells: Vec<Cell> = Vec::new();
    let mut out = Table::new(
        "GF(2^8) kernel throughput (GB/s, min-of-N)",
        &["kernel", "op", "size", "GB/s"],
    );
    for kernel in Kernel::supported() {
        let name = kernel.tier().name();
        for size in SIZES {
            let gbs = best_gbs(size, budget, reps, || {
                kernel.mul_slice(&table, black_box(&src[..size]), black_box(&mut dst[..size]));
            });
            cells.push(Cell {
                kernel: name,
                op: "mul_slice",
                size,
                gbs,
            });

            let gbs = best_gbs(size, budget, reps, || {
                kernel.mul_add_slice(&table, black_box(&src[..size]), black_box(&mut dst[..size]));
            });
            cells.push(Cell {
                kernel: name,
                op: "mul_add_slice",
                size,
                gbs,
            });

            let trows: Vec<(&Gf256MulTable, &[u8])> = row_tables
                .iter()
                .zip(&rows_data)
                .map(|(t, d)| (t, &d[..size]))
                .collect();
            let gbs = best_gbs(size * row_count, budget, reps, || {
                mul_add_rows_on(kernel, black_box(&mut dst[..size]), black_box(&trows));
            });
            cells.push(Cell {
                kernel: name,
                op: "mul_add_rows",
                size,
                gbs,
            });
        }
    }
    for c in &cells {
        out.row(&[
            c.kernel.to_string(),
            c.op.to_string(),
            format!("{}KiB", c.size / 1024),
            f2(c.gbs),
        ]);
    }
    out.emit("E_kernels");

    let lookup = |kernel: &str, op: &str, size: usize| {
        cells
            .iter()
            .find(|c| c.kernel == kernel && c.op == op && c.size == size)
            .map(|c| c.gbs)
            .expect("cell measured")
    };
    // The acceptance ratio: the portable wide tier must beat per-byte
    // scalar by 2x on the canonical RS inner-loop shape.
    let ratio =
        lookup("swar", "mul_add_slice", 64 * 1024) / lookup("scalar", "mul_add_slice", 64 * 1024);
    let active = Kernel::active().tier().name();
    println!("active kernel: {active}");
    println!(
        "swar/scalar mul_add_slice @64KiB: {}x (target >= 2x)",
        f2(ratio)
    );

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("kernels".into())),
        ("quick".into(), Json::Num(if quick { 1.0 } else { 0.0 })),
        ("rows".into(), Json::Num(row_count as f64)),
        ("active_kernel".into(), Json::Str(active.into())),
        (
            "tiers".into(),
            Json::Arr(
                Kernel::supported()
                    .iter()
                    .map(|k| Json::Str(k.tier().name().into()))
                    .collect(),
            ),
        ),
        (
            "cells".into(),
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("kernel".into(), Json::Str(c.kernel.into())),
                            ("op".into(), Json::Str(c.op.into())),
                            ("size".into(), Json::Num(c.size as f64)),
                            ("gbs".into(), Json::Num(c.gbs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("swar_vs_scalar_mul_add_64k".into(), Json::Num(ratio)),
    ]);
    if let Some(path) = json.write_artifact("BENCH_kernels.json") {
        println!("wrote {}", path.display());
    }
}

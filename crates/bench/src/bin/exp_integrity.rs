//! E10 — §3.3: timestamp chains survive signature breaks; Pedersen
//! anchors keep them hiding.
//!
//! Demonstrates the paper's integrity story end to end: a document
//! timestamped in 2026 under scheme v1, renewed in 2044 under v2 (before
//! v1's 2045 break), verifies in 2080 back to 2026; an un-renewed chain
//! and a late-renewed chain both fail. Then compares hash vs Pedersen
//! anchoring for long-term confidentiality of the timestamped content.

use aeon_bench::Table;
use aeon_crypto::ChaChaDrbg;
use aeon_integrity::timestamp::{
    AnchorMode, ChainInvalid, DocumentChain, SigBreakSchedule, TimestampAuthority,
};
use aeon_num::pedersen::Committer;
use aeon_num::ModpGroup;

fn main() {
    let mut rng = ChaChaDrbg::from_u64_seed(0x1216);
    let committer = Committer::new(ModpGroup::rfc3526_2048());
    let mut schedule = SigBreakSchedule::new();
    schedule.set_break("wots-v1", 2045);
    schedule.set_break("wots-v2", 2090);

    let document = b"land deed, recorded 2026";

    // Chain A: renewed on time (2044, before v1's 2045 break).
    let mut tsa = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 4);
    let mut chain_a = DocumentChain::create(
        &mut rng,
        &mut tsa,
        &committer,
        AnchorMode::HashDigest,
        document,
    )
    .expect("create");
    tsa.advance_to(2044);
    tsa.rotate(&mut rng, "wots-v2", 4);
    chain_a.renew(&mut tsa).expect("renew");

    // Chain B: never renewed.
    let mut tsa_b = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 4);
    let chain_b = DocumentChain::create(
        &mut rng,
        &mut tsa_b,
        &committer,
        AnchorMode::HashDigest,
        document,
    )
    .expect("create");

    // Chain C: renewed too late (2050, after the break).
    let mut tsa_c = TimestampAuthority::new(&mut rng, "wots-v1", 2026, 4);
    let mut chain_c = DocumentChain::create(
        &mut rng,
        &mut tsa_c,
        &committer,
        AnchorMode::HashDigest,
        document,
    )
    .expect("create");
    tsa_c.advance_to(2050);
    tsa_c.rotate(&mut rng, "wots-v2", 4);
    chain_c.renew(&mut tsa_c).expect("renew");

    let verdict = |chain: &DocumentChain, year: u32| match chain.verify(&schedule, year) {
        Ok(origin) => format!("valid (proves {origin})"),
        Err(ChainInvalid::HeadBroken) => "INVALID: head scheme broken".to_string(),
        Err(ChainInvalid::RenewedTooLate { link }) => {
            format!("INVALID: link {link} renewed after break")
        }
        Err(e) => format!("INVALID: {e}"),
    };

    let mut table = Table::new(
        "Timestamp chains across the 2045 break of wots-v1",
        &["chain", "2040", "2060", "2080"],
    );
    for (name, chain) in [
        ("renewed 2044 (on time)", &chain_a),
        ("never renewed", &chain_b),
        ("renewed 2050 (late)", &chain_c),
    ] {
        table.row(&[
            name.to_string(),
            verdict(chain, 2040),
            verdict(chain, 2060),
            verdict(chain, 2080),
        ]);
    }
    table.emit("e10_integrity");

    // Confidentiality of the anchor: hash mode is dictionary-attackable
    // by an unbounded adversary; Pedersen mode is statistically hiding.
    let mut tsa_d = TimestampAuthority::new(&mut rng, "wots-v2", 2026, 4);
    let hash_chain = DocumentChain::create(
        &mut rng,
        &mut tsa_d,
        &committer,
        AnchorMode::HashDigest,
        b"patient record: diagnosis X",
    )
    .expect("create");
    let pedersen_chain = DocumentChain::create(
        &mut rng,
        &mut tsa_d,
        &committer,
        AnchorMode::PedersenHiding,
        b"patient record: diagnosis X",
    )
    .expect("create");

    // The dictionary attack: an adversary guessing candidate documents.
    let candidates: [&[u8]; 3] = [
        b"patient record: diagnosis X",
        b"patient record: diagnosis Y",
        b"something else entirely",
    ];
    let hash_hit = candidates
        .iter()
        .any(|c| aeon_crypto::Sha256::digest(c).as_ref() == hash_chain.anchor());
    // Against Pedersen, every candidate is consistent with the anchor for
    // SOME blinding, so the dictionary attack learns nothing; concretely
    // the anchor never equals any candidate-derived value.
    let pedersen_hit = candidates
        .iter()
        .any(|c| aeon_crypto::Sha256::digest(c).as_ref() == pedersen_chain.anchor());
    println!("Dictionary attack on the published anchor:");
    println!("  hash anchor identified the document: {hash_hit}");
    println!("  Pedersen anchor identified the document: {pedersen_hit}");
    assert!(hash_hit && !pedersen_hit);
    println!("\nExpected shape (paper/LINCOS): chains renewed before each break");
    println!("keep proving the original year forever; hash anchors leak content");
    println!("to future adversaries, Pedersen anchors never do.");
}

//! E8 — Bounded Storage Model key agreement.
//!
//! The §4 direction: "the BSM is overdue for a practical evaluation."
//! This experiment runs Maurer-style key agreement over a simulated
//! broadcast stream, sweeping the adversary's storage fraction, and
//! reports raw-key exposure, final-key compromise, and the honest/
//! adversary storage gap.

use aeon_bench::{f2, f3, Table};
use aeon_channel::bsm::{
    expected_known_fraction, final_key_compromise_probability, run_session, BsmParams,
};
use aeon_crypto::ChaChaDrbg;

fn main() {
    let params = BsmParams {
        stream_blocks: 8192,
        block_size: 32,
        samples: 128,
    };
    let stream_mb = params.stream_blocks * params.block_size / (1 << 20);
    println!(
        "Stream: {} blocks x {} B = {} MiB; honest parties store {} KiB\n",
        params.stream_blocks,
        params.block_size,
        stream_mb,
        params.samples * params.block_size / 1024
    );

    let mut table = Table::new(
        "BSM key agreement vs adversary storage",
        &[
            "adv-storage(%)",
            "raw-key-known(sim)",
            "raw-key-known(theory)",
            "P(final key)(theory)",
            "final-compromised(sim)",
        ],
    );
    for pct in [5u32, 10, 25, 50, 75, 90, 99, 100] {
        let adv_blocks = (params.stream_blocks as u64 * pct as u64 / 100) as usize;
        let mut known_sum = 0.0;
        let mut finals = 0u32;
        let runs = 10;
        for seed in 0..runs {
            let mut rng = ChaChaDrbg::from_u64_seed(0xB5A + seed);
            let out = run_session(&mut rng, params, adv_blocks);
            known_sum += out.adversary_raw_fraction;
            finals += out.adversary_knows_final as u32;
        }
        table.row(&[
            pct.to_string(),
            f3(known_sum / runs as f64),
            f3(expected_known_fraction(params, adv_blocks)),
            format!(
                "{:.2e}",
                final_key_compromise_probability(params, adv_blocks)
            ),
            format!("{finals}/{runs}"),
        ]);
    }
    table.emit("e8_bsm");

    // The storage gap: ratio of adversary storage needed for 50% final-key
    // compromise vs honest storage.
    let honest = params.samples * params.block_size;
    let stream = params.stream_blocks * params.block_size;
    println!(
        "Honest storage {} KiB vs full stream {} KiB: gap = {}x",
        honest / 1024,
        stream / 1024,
        f2(stream as f64 / honest as f64)
    );
    println!("\nExpected shape (Maurer): the adversary's final-key probability is");
    println!("(B/N)^samples — negligible until it stores essentially the whole");
    println!("stream, while honest parties store samples/stream_blocks of it.");
}

//! E5 — mobile adversary vs proactive refresh.
//!
//! Sweeps the refresh period against a fixed corruption rate and
//! measures compromise probability — the quantitative version of the
//! paper's claim that proactive secret sharing is the defense against
//! the mobile adversary, and that the refresh *rate* is the security
//! parameter.

use aeon_adversary::mobile::{compromise_probability, MobileAdversary};
use aeon_bench::{f3, Table};

fn main() {
    let secret = b"archive root secret";
    let threshold = 3;
    let shares = 6;
    let epochs = 60;
    let trials = 60;

    let mut table = Table::new(
        "Mobile adversary: compromise probability vs refresh period (t=3, n=6, 1 corruption/epoch, 60 epochs)",
        &["refresh-every(epochs)", "P(compromise)", "refresh-rounds"],
    );
    for refresh_every in [0u64, 1, 2, 3, 4, 6, 10, 20, 60] {
        let adv = MobileAdversary {
            corrupt_per_epoch: 1,
            epochs,
            refresh_every,
        };
        let p = compromise_probability(0x0B11E, secret, threshold, shares, adv, trials);
        let label = if refresh_every == 0 {
            "never (static)".to_string()
        } else {
            refresh_every.to_string()
        };
        let rounds = epochs.checked_div(refresh_every).unwrap_or(0);
        table.row(&[label, f3(p), rounds.to_string()]);
    }
    table.emit("e5_mobile");

    println!("Expected shape (paper): static sharing always falls; refreshing");
    println!("every epoch (period < t/corruption-rate) drives P to 0; the");
    println!("crossover sits where the adversary can gather t shares per period.");
}

//! E-parallel — sequential vs parallel lane dispatch on the virtual
//! clock.
//!
//! Batched fan-in (E-retrieve) made each node pay its positioning cost
//! once per batch; dispatch still visited nodes one after another, so a
//! batch over `n` nodes cost the *sum* of the per-node transfers.
//! Parallel lane dispatch overlaps them: every node's framed transfer
//! is charged to that node's own lane starting at the dispatch instant,
//! and the batch completes at the *max* of the lane completions — the
//! critical path. On a balanced fan-out across `n` equally-provisioned
//! nodes the win approaches `n×`, and it is largest where positioning
//! dominates: a tape library with 30 s seeks pays one seek per batch
//! instead of `n`.
//!
//! The experiment sweeps lane count × device profile × dispatch policy
//! over a `retrieve_many` fan-out, asserting payload equality between
//! dispatches in every cell and `≥ 0.8·n` speedup on the tape profile.
//! A second stage repairs an identically-degraded fleet through
//! `RepairCampaignDriver` under both dispatches and reports the
//! campaign-time reduction. Results land in `BENCH_parallel.json`.

use aeon_bench::{f2, CliArgs, Json, Table};
use aeon_core::{
    Archive, ArchiveConfig, DispatchPolicy, IntegrityMode, ObjectId, PolicyKind,
    RepairCampaignDriver, RepairQueueOrder,
};
use aeon_store::clock::{SimClock, SimDuration};
use aeon_store::node::ShardKey;
use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};

const SWEEP_SEED: u64 = 0x1A7E5;

/// Device profiles, most to least seek-tolerant. The tape profile is
/// the acceptance gate: 30 s positioning makes dispatch policy the
/// whole story.
struct Profile {
    name: &'static str,
    seek: SimDuration,
    bytes_per_sec: f64,
}

fn profiles() -> Vec<Profile> {
    vec![
        Profile {
            name: "archival-disk",
            seek: SimDuration::from_millis(4),
            bytes_per_sec: 60e6,
        },
        Profile {
            name: "cold-hdd",
            seek: SimDuration::from_millis(40),
            bytes_per_sec: 20e6,
        },
        Profile {
            name: "tape-library",
            seek: SimDuration::from_secs(30),
            bytes_per_sec: 100e6,
        },
    ]
}

/// Deterministic pseudo-random payload for object `i`.
fn payload(i: usize, len: usize) -> Vec<u8> {
    let mut state = SWEEP_SEED ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Builds an archive whose transfers fan out across exactly `lanes`
/// nodes: RS(`lanes − 1`, 1) over `lanes` single-node sites, one shard
/// per site, so every shard of the batch rides its own equally-loaded
/// lane — the balanced fan-out where parallel dispatch approaches an
/// `n×` win.
fn build_fanout(
    lanes: usize,
    profile: &Profile,
    dispatch: DispatchPolicy,
    count: usize,
    size: usize,
) -> (Archive, SimClock, Vec<ObjectId>) {
    let site_names: Vec<String> = (0..lanes).map(|i| format!("s{i}")).collect();
    let site_refs: Vec<&str> = site_names.iter().map(String::as_str).collect();
    let tp = ThroughputProfile::new(profile.seek, profile.bytes_per_sec, profile.bytes_per_sec);
    let (cluster, clock) = throughput_in_memory_cluster(&site_refs, 1, &tp);
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded {
        data: lanes - 1,
        parity: 1,
    })
    .with_integrity(IntegrityMode::DigestOnly)
    .with_dispatch(dispatch);
    let mut archive = Archive::with_cluster(config, cluster).expect("archive");
    let ids = (0..count)
        .map(|i| {
            archive
                .ingest(&payload(i, size), &format!("obj-{i:03}"))
                .expect("ingest")
        })
        .collect();
    (archive, clock, ids)
}

/// Times one `retrieve_many` over the whole corpus, returning virtual
/// seconds and the payload bytes for cross-dispatch equality checks.
fn time_retrieve(archive: &Archive, clock: &SimClock, ids: &[ObjectId]) -> (f64, Vec<Vec<u8>>) {
    let t0 = clock.now();
    let bytes: Vec<Vec<u8>> = archive
        .retrieve_many(ids)
        .into_iter()
        .map(|r| r.expect("retrieve"))
        .collect();
    (clock.now().since(t0).as_secs_f64(), bytes)
}

/// Builds a degraded fleet under the given dispatch policy: RS(4, 2)
/// over six cold-HDD sites, every object missing two shards (exactly at
/// its read threshold, so each repair reads four shards and writes two
/// back). Deletions follow the manifest placement, so both twins
/// degrade identically.
fn build_degraded_fleet(dispatch: DispatchPolicy, objects: usize) -> (Archive, SimClock) {
    let sites = ["s0", "s1", "s2", "s3", "s4", "s5"];
    let tp = ThroughputProfile::new(SimDuration::from_millis(40), 20e6, 20e6);
    let (cluster, clock) = throughput_in_memory_cluster(&sites, 1, &tp);
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 4, parity: 2 })
        .with_integrity(IntegrityMode::DigestOnly)
        .with_dispatch(dispatch);
    let mut archive = Archive::with_cluster(config, cluster).expect("archive");
    let ids: Vec<ObjectId> = (0..objects)
        .map(|i| {
            archive
                .ingest(&payload(i, 96 * 1024), &format!("fleet-{i:03}"))
                .expect("ingest")
        })
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let placement = archive.manifest(id).expect("manifest").placement.clone();
        for j in 0..2 {
            let idx = (i + j) % placement.len();
            archive
                .cluster()
                .node(placement[idx])
                .expect("placed node")
                .delete(&ShardKey::new(id.as_str(), idx as u32))
                .expect("stage loss");
        }
    }
    (archive, clock)
}

/// Drains a full repair campaign and returns the virtual seconds its
/// background steps occupied the devices.
fn run_campaign(dispatch: DispatchPolicy, objects: usize) -> f64 {
    let (mut archive, _clock) = build_degraded_fleet(dispatch, objects);
    let mut driver = RepairCampaignDriver::new(&archive, RepairQueueOrder::Priority, 0.2);
    while !driver.is_done() {
        driver.step(&mut archive).expect("repair step");
    }
    driver.progress().background_time.as_secs_f64()
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.flag("--quick");
    let (lane_counts, batch, object_size, fleet_objects): (&[usize], usize, usize, usize) = if quick
    {
        (&[4, 8], 4, 64 * 1024, 8)
    } else {
        (&[4, 8, 12], 8, 256 * 1024, 16)
    };
    let workers = 4;

    let mut table = Table::new(
        "batch fan-out: sequential dispatch (sum of lanes) vs parallel lanes (critical path)",
        &[
            "profile",
            "lanes",
            "seq(s)",
            "parallel(s)",
            "speedup",
            "ideal",
        ],
    );
    let mut entries: Vec<Json> = Vec::new();

    for profile in profiles() {
        for &lanes in lane_counts {
            let (seq_archive, seq_clock, seq_ids) = build_fanout(
                lanes,
                &profile,
                DispatchPolicy::Sequential,
                batch,
                object_size,
            );
            let (seq_s, seq_bytes) = time_retrieve(&seq_archive, &seq_clock, &seq_ids);

            let (par_archive, par_clock, par_ids) = build_fanout(
                lanes,
                &profile,
                DispatchPolicy::Parallel { workers },
                batch,
                object_size,
            );
            let (par_s, par_bytes) = time_retrieve(&par_archive, &par_clock, &par_ids);

            assert_eq!(
                seq_bytes, par_bytes,
                "{} lanes={lanes}: payloads must be dispatch-independent",
                profile.name
            );

            let speedup = seq_s / par_s;
            if profile.seek >= SimDuration::from_secs(30) {
                assert!(
                    speedup >= 0.8 * lanes as f64,
                    "{}: parallel speedup {speedup:.2}x below 0.8·n for n={lanes} lanes",
                    profile.name
                );
            }
            table.row(&[
                profile.name.to_string(),
                lanes.to_string(),
                f2(seq_s),
                f2(par_s),
                format!("{speedup:.2}x"),
                format!("{lanes}.00x"),
            ]);
            entries.push(Json::Obj(vec![
                ("profile".into(), Json::Str(profile.name.into())),
                (
                    "seek_ms".into(),
                    Json::Num(profile.seek.as_secs_f64() * 1e3),
                ),
                ("lanes".into(), Json::Num(lanes as f64)),
                ("batch".into(), Json::Num(batch as f64)),
                ("object_bytes".into(), Json::Num(object_size as f64)),
                ("sequential_s".into(), Json::Num(seq_s)),
                ("parallel_s".into(), Json::Num(par_s)),
                ("speedup".into(), Json::Num(speedup)),
            ]));
        }
    }
    table.emit("e_parallel");

    // Campaign stage: the same degraded fleet repaired under both
    // dispatch policies. Each batched repair reads four shards from
    // four distinct nodes; parallel lanes overlap those reads, so the
    // campaign's background time shrinks toward the critical path.
    let campaign_seq = run_campaign(DispatchPolicy::Sequential, fleet_objects);
    let campaign_par = run_campaign(DispatchPolicy::Parallel { workers }, fleet_objects);
    let reduction = 1.0 - campaign_par / campaign_seq;
    assert!(
        campaign_par < campaign_seq,
        "parallel dispatch must shorten the repair campaign \
         (sequential {campaign_seq:.2}s, parallel {campaign_par:.2}s)"
    );
    println!(
        "repair campaign over {fleet_objects} degraded objects: sequential {}s, \
         parallel {}s ({:.1}% shorter)",
        f2(campaign_seq),
        f2(campaign_par),
        reduction * 100.0
    );

    let artifact = Json::Obj(vec![
        ("experiment".into(), Json::Str("parallel".into())),
        ("seed".into(), Json::Num(SWEEP_SEED as f64)),
        ("quick".into(), Json::Num(if quick { 1.0 } else { 0.0 })),
        ("workers".into(), Json::Num(workers as f64)),
        ("runs".into(), Json::Arr(entries)),
        (
            "campaign".into(),
            Json::Obj(vec![
                ("objects".into(), Json::Num(fleet_objects as f64)),
                ("sequential_s".into(), Json::Num(campaign_seq)),
                ("parallel_s".into(), Json::Num(campaign_par)),
                ("reduction".into(), Json::Num(reduction)),
            ]),
        ),
    ]);
    match artifact.write_artifact("BENCH_parallel.json") {
        Some(path) => println!("results written to {}", path.display()),
        None => eprintln!("warning: could not write BENCH_parallel.json"),
    }
}

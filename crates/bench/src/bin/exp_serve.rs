//! E10 — serving under maintenance: the §3.2 reservation arithmetic as
//! foreground latency distributions.
//!
//! The paper prices a re-encryption campaign at `1/(1−r)` of its
//! read-only duration once a fraction `r` of bandwidth is reserved for
//! foreground traffic — but never asks what the foreground traffic
//! *experiences*. This experiment measures exactly that: a seeded
//! three-tenant workload runs against a throughput-charged archive,
//! first alone (baseline, run twice to pin determinism), then
//! concurrently with a full re-encryption campaign under several
//! `reserved_fraction` settings, and finally across an offered-load
//! sweep to locate the saturation knee. Per-tenant p50/p99/p999 land in
//! `BENCH_serve.json`.
//!
//! Run with `--quick` for the CI-sized version.

use aeon_bench::{f2, CliArgs, Json, Table};
use aeon_core::{Archive, ArchiveConfig, ObjectId, PipelineConfig, PolicyKind};
use aeon_crypto::SuiteId;
use aeon_serve::{
    serve, ArrivalProcess, BackgroundCampaign, EngineConfig, ServeReport, TenantSpec, WorkloadSpec,
};
use aeon_store::clock::SimDuration;
use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};

struct Scale {
    objects: usize,
    object_bytes: usize,
    requests: usize,
    requests_per_sec: f64,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Scale {
                objects: 32,
                object_bytes: 8 * 1024,
                requests: 300,
                requests_per_sec: 50.0,
            }
        } else {
            Scale {
                objects: 128,
                object_bytes: 32 * 1024,
                requests: 1500,
                requests_per_sec: 50.0,
            }
        }
    }
}

/// Disk-class cluster: 4 nodes over two sites, 5 ms positioning,
/// 200/150 MB/s streaming — slow enough that queueing is visible at
/// tens of requests per second.
fn build_archive(scale: &Scale) -> (Archive, Vec<ObjectId>) {
    let profile = ThroughputProfile::new(SimDuration::from_secs_f64(0.005), 200e6, 150e6);
    let (cluster, _clock) = throughput_in_memory_cluster(&["east", "west"], 2, &profile);
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 2, parity: 1 }).with_pipeline(
        PipelineConfig {
            chunk_size: 16 * 1024,
            workers: 1,
        },
    );
    let mut archive = Archive::with_cluster(config, cluster).expect("cluster archive");
    let catalog = (0..scale.objects)
        .map(|i| {
            let payload = aeon_bench::reference_payload(scale.object_bytes, i as u64);
            archive
                .ingest(&payload, &format!("serve-{i}"))
                .expect("ingest")
        })
        .collect();
    (archive, catalog)
}

/// Gold/silver/bronze: weights 5/3/2, read-heavy to mixed, bronze on a
/// tight quota so admission control is exercised, not just configured.
fn workload(scale: &Scale, load_multiplier: f64) -> WorkloadSpec {
    WorkloadSpec::new(
        vec![
            TenantSpec::new("gold", 5.0).with_read_fraction(0.9),
            TenantSpec::new("silver", 3.0).with_read_fraction(0.8),
            TenantSpec::new("bronze", 2.0)
                .with_read_fraction(0.5)
                .with_quota(4.0, 6.0),
        ],
        ArrivalProcess::Open {
            requests_per_sec: scale.requests_per_sec * load_multiplier,
        },
    )
    .with_total_requests(scale.requests)
    .with_write_bytes(scale.object_bytes)
    .with_zipf_exponent(1.1)
    .with_seed(0xAE0)
}

fn run(scale: &Scale, load_multiplier: f64, reserved: Option<f64>) -> ServeReport {
    let (mut archive, catalog) = build_archive(scale);
    let config = EngineConfig {
        background: reserved.map(|reserved_fraction| BackgroundCampaign {
            new_policy: PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 2,
                parity: 1,
            },
            reserved_fraction,
        }),
        ..EngineConfig::default()
    };
    serve(
        &mut archive,
        &catalog,
        &workload(scale, load_multiplier),
        &config,
    )
    .expect("serve run")
}

fn ms(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn tenant_json(report: &ServeReport) -> Json {
    Json::Arr(
        report
            .tenants
            .iter()
            .map(|t| {
                let (p50, p99, p999) = t.latency.percentiles();
                let (_, qp99, _) = t.queue_wait.percentiles();
                Json::Obj(vec![
                    ("name".into(), Json::Str(t.name.clone())),
                    ("offered".into(), Json::Num(t.offered as f64)),
                    ("admitted".into(), Json::Num(t.admitted as f64)),
                    ("rejected".into(), Json::Num(t.rejected as f64)),
                    ("completed".into(), Json::Num(t.completed as f64)),
                    ("failed".into(), Json::Num(t.failed as f64)),
                    ("bytes_read".into(), Json::Num(t.bytes_read as f64)),
                    ("bytes_written".into(), Json::Num(t.bytes_written as f64)),
                    ("p50_ms".into(), Json::Num(ms(p50))),
                    ("p99_ms".into(), Json::Num(ms(p99))),
                    ("p999_ms".into(), Json::Num(ms(p999))),
                    ("mean_ms".into(), Json::Num(ms(t.latency.mean()))),
                    ("queue_p99_ms".into(), Json::Num(ms(qp99))),
                ])
            })
            .collect(),
    )
}

fn run_json(label: &str, reserved: Option<f64>, report: &ServeReport) -> Json {
    let mut fields = vec![
        ("label".into(), Json::Str(label.to_string())),
        (
            "reserved_fraction".into(),
            reserved.map_or(Json::Num(f64::NAN), Json::Num),
        ),
        ("elapsed_s".into(), Json::Num(report.elapsed.as_secs_f64())),
        ("event_digest".into(), Json::Str(report.digest_hex())),
        ("tenants".into(), tenant_json(report)),
        (
            "cache".into(),
            Json::Obj(vec![
                (
                    "payload_hits".into(),
                    Json::Num(report.cache.payload_hits as f64),
                ),
                (
                    "payload_misses".into(),
                    Json::Num(report.cache.payload_misses as f64),
                ),
                (
                    "manifest_hits".into(),
                    Json::Num(report.cache.manifest_hits as f64),
                ),
                (
                    "manifest_misses".into(),
                    Json::Num(report.cache.manifest_misses as f64),
                ),
                ("evictions".into(), Json::Num(report.cache.evictions as f64)),
            ]),
        ),
    ];
    if let Some(p) = &report.campaign {
        fields.push((
            "campaign".into(),
            Json::Obj(vec![
                ("objects_done".into(), Json::Num(p.objects_done as f64)),
                ("objects_total".into(), Json::Num(p.objects_total as f64)),
                ("bytes_read".into(), Json::Num(p.bytes_read as f64)),
                ("bytes_written".into(), Json::Num(p.bytes_written as f64)),
                (
                    "background_s".into(),
                    Json::Num(p.background_time.as_secs_f64()),
                ),
            ]),
        ));
    }
    Json::Obj(fields)
}

fn main() {
    let quick = CliArgs::parse().flag("--quick");
    let scale = Scale::new(quick);

    // Baseline twice: the determinism acceptance check. Fresh archives,
    // identical seeds — the reports must match byte for byte.
    let baseline = run(&scale, 1.0, None);
    let repeat = run(&scale, 1.0, None);
    let identical = baseline == repeat;
    assert!(
        identical,
        "identical seeds must reproduce identical reports (digest {} vs {})",
        baseline.digest_hex(),
        repeat.digest_hex()
    );

    // The same workload while a full re-encryption campaign runs
    // behind it, at three reservation settings.
    let fractions = [0.25, 0.5, 0.9];
    let campaign_runs: Vec<(f64, ServeReport)> = fractions
        .iter()
        .map(|&r| (r, run(&scale, 1.0, Some(r))))
        .collect();

    let mut table = Table::new(
        "serving under §3.2 re-encryption (aggregate latency, ms)",
        &["run", "r", "p50", "p99", "p999", "rejected", "campaign_s"],
    );
    let agg = |rep: &ServeReport| rep.merged_latency().percentiles();
    let rejected = |rep: &ServeReport| rep.tenants.iter().map(|t| t.rejected).sum::<u64>();
    let (p50, p99, p999) = agg(&baseline);
    table.row(&[
        "baseline".to_string(),
        "-".to_string(),
        f2(ms(p50)),
        f2(ms(p99)),
        f2(ms(p999)),
        rejected(&baseline).to_string(),
        "-".to_string(),
    ]);
    for (r, rep) in &campaign_runs {
        let (p50, p99, p999) = agg(rep);
        let camp = rep.campaign.as_ref().expect("campaign configured");
        table.row(&[
            "campaign".to_string(),
            f2(*r),
            f2(ms(p50)),
            f2(ms(p99)),
            f2(ms(p999)),
            rejected(rep).to_string(),
            f2(camp.background_time.as_secs_f64()),
        ]);
    }
    table.emit("e10_serve");

    // Offered-load sweep for the saturation curve (no campaign).
    let multipliers: &[f64] = if quick {
        &[0.5, 1.0, 2.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0]
    };
    let mut sweep_table = Table::new(
        "saturation sweep (open loop, no campaign)",
        &["load(rps)", "p50(ms)", "p99(ms)", "rejected"],
    );
    let sweep: Vec<Json> = multipliers
        .iter()
        .map(|&m| {
            let rep = run(&scale, m, None);
            let (p50, p99, _) = agg(&rep);
            sweep_table.row(&[
                f2(scale.requests_per_sec * m),
                f2(ms(p50)),
                f2(ms(p99)),
                rejected(&rep).to_string(),
            ]);
            Json::Obj(vec![
                ("offered_rps".into(), Json::Num(scale.requests_per_sec * m)),
                ("p50_ms".into(), Json::Num(ms(p50))),
                ("p99_ms".into(), Json::Num(ms(p99))),
                ("rejected".into(), Json::Num(rejected(&rep) as f64)),
            ])
        })
        .collect();
    sweep_table.emit("e10_serve_sweep");

    let mut runs = vec![
        run_json("baseline", None, &baseline),
        run_json("baseline-repeat", None, &repeat),
    ];
    for (r, rep) in &campaign_runs {
        runs.push(run_json("campaign", Some(*r), rep));
    }
    let artifact = Json::Obj(vec![
        ("experiment".into(), Json::Str("serve".into())),
        ("quick".into(), Json::Num(u8::from(quick) as f64)),
        (
            "config".into(),
            Json::Obj(vec![
                ("objects".into(), Json::Num(scale.objects as f64)),
                ("object_bytes".into(), Json::Num(scale.object_bytes as f64)),
                ("requests".into(), Json::Num(scale.requests as f64)),
                ("requests_per_sec".into(), Json::Num(scale.requests_per_sec)),
                ("seed".into(), Json::Num(0xAE0 as f64)),
            ]),
        ),
        (
            "determinism".into(),
            Json::Obj(vec![
                ("identical".into(), Json::Num(u8::from(identical) as f64)),
                ("digest".into(), Json::Str(baseline.digest_hex())),
            ]),
        ),
        ("runs".into(), Json::Arr(runs)),
        ("saturation".into(), Json::Arr(sweep)),
    ]);
    if let Some(path) = artifact.write_artifact("BENCH_serve.json") {
        println!("artifact: {}", path.display());
    }

    // Sanity the experiment promises: the campaign completed under
    // every reservation, and contention never *improved* the tail.
    for (r, rep) in &campaign_runs {
        let camp = rep.campaign.as_ref().expect("campaign configured");
        assert_eq!(
            camp.objects_done, camp.objects_total,
            "campaign at r={r} must finish"
        );
        let (_, base_p99, _) = agg(&baseline);
        let (_, camp_p99, _) = agg(rep);
        assert!(
            camp_p99 >= base_p99,
            "campaign at r={r} cannot beat the baseline tail"
        );
    }
    println!("serving-under-maintenance experiment complete");
}

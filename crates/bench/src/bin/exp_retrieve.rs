//! E-retrieve — sequential vs batched read fan-in on the virtual clock.
//!
//! Placement spreads every shard of one object across distinct nodes,
//! so a single-object read pays one positioning cost per node either
//! way. The batched win comes from *fan-in across objects*:
//! `retrieve_many` groups every shard the whole batch needs from a
//! given node into one framed `get_batch` request, paying that node's
//! seek once per batch instead of once per object. This experiment
//! sweeps batch sizes x policies x device profiles and times a
//! sequential `retrieve` loop against one `retrieve_many` call on the
//! simulated clock. The win scales with batch size and with how
//! seek-dominated the medium is: an archival disk barely notices, a
//! tape library with multi-second positioning lives or dies by it.
//!
//! The run asserts batched retrieval is strictly faster than
//! sequential on at least one profile. Results land in
//! `BENCH_retrieve.json`.

use aeon_bench::{f2, CliArgs, Json, Table};
use aeon_core::{Archive, ArchiveConfig, IntegrityMode, ObjectId, PolicyKind};
use aeon_store::clock::SimDuration;
use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};

const SWEEP_SEED: u64 = 0x5EEB;

/// Device profiles, most to least seek-tolerant.
struct Profile {
    name: &'static str,
    seek: SimDuration,
    bytes_per_sec: f64,
}

fn profiles() -> Vec<Profile> {
    vec![
        Profile {
            name: "archival-disk",
            seek: SimDuration::from_millis(4),
            bytes_per_sec: 60e6,
        },
        Profile {
            name: "cold-hdd",
            seek: SimDuration::from_millis(40),
            bytes_per_sec: 20e6,
        },
        Profile {
            name: "tape-library",
            seek: SimDuration::from_secs(30),
            bytes_per_sec: 100e6,
        },
    ]
}

fn policies() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("rep-4", PolicyKind::Replication { copies: 4 }),
        ("rs-3+2", PolicyKind::ErasureCoded { data: 3, parity: 2 }),
        (
            "shamir-3/5",
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
        ),
    ]
}

/// Deterministic pseudo-random payload for object `i`.
fn payload(i: usize, len: usize) -> Vec<u8> {
    let mut state = SWEEP_SEED ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Builds an archive over one throughput-charged node per shard slot
/// and ingests `count` objects of `size` bytes; returns the archive,
/// its clock, and the object ids.
fn build(
    policy: &PolicyKind,
    profile: &Profile,
    count: usize,
    size: usize,
) -> (Archive, aeon_store::clock::SimClock, Vec<ObjectId>) {
    let sites = policy.shard_count().max(1);
    let site_names: Vec<String> = (0..sites).map(|i| format!("s{i}")).collect();
    let site_refs: Vec<&str> = site_names.iter().map(String::as_str).collect();
    let tp = ThroughputProfile::new(profile.seek, profile.bytes_per_sec, profile.bytes_per_sec);
    let (cluster, clock) = throughput_in_memory_cluster(&site_refs, 1, &tp);
    let config = ArchiveConfig::new(policy.clone()).with_integrity(IntegrityMode::DigestOnly);
    let mut archive = Archive::with_cluster(config, cluster).expect("archive");
    let ids = (0..count)
        .map(|i| {
            archive
                .ingest(&payload(i, size), &format!("obj-{i:03}"))
                .expect("ingest")
        })
        .collect();
    (archive, clock, ids)
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.flag("--quick");
    let (batch_sizes, object_size): (&[usize], usize) = if quick {
        (&[8], 64 * 1024)
    } else {
        (&[4, 16], 256 * 1024)
    };

    let mut table = Table::new(
        "retrieve latency: sequential per-object loop vs one batched fan-in (virtual clock)",
        &[
            "profile",
            "policy",
            "batch",
            "seq(s)",
            "batched(s)",
            "speedup",
        ],
    );
    let mut entries: Vec<Json> = Vec::new();
    let mut batched_wins_by_profile: Vec<(String, usize, usize)> = Vec::new();

    for profile in profiles() {
        let mut wins = 0usize;
        let mut cells = 0usize;
        for (policy_name, policy) in policies() {
            for &batch in batch_sizes {
                // Fresh twin archives so each timing starts from an
                // identical fleet state and placement.
                let (seq_archive, seq_clock, seq_ids) =
                    build(&policy, &profile, batch, object_size);
                let t0 = seq_clock.now();
                let seq_bytes: Vec<Vec<u8>> = seq_ids
                    .iter()
                    .map(|id| seq_archive.retrieve(id).expect("sequential retrieve"))
                    .collect();
                let seq_time = seq_clock.now().since(t0);

                let (bat_archive, bat_clock, bat_ids) =
                    build(&policy, &profile, batch, object_size);
                let t0 = bat_clock.now();
                let bat_bytes: Vec<Vec<u8>> = bat_archive
                    .retrieve_many(&bat_ids)
                    .into_iter()
                    .map(|r| r.expect("batched retrieve"))
                    .collect();
                let bat_time = bat_clock.now().since(t0);

                assert_eq!(seq_bytes, bat_bytes, "payload bytes must be identical");

                let seq_s = seq_time.as_secs_f64();
                let bat_s = bat_time.as_secs_f64();
                cells += 1;
                if bat_s < seq_s {
                    wins += 1;
                }
                table.row(&[
                    profile.name.to_string(),
                    policy_name.to_string(),
                    batch.to_string(),
                    f2(seq_s),
                    f2(bat_s),
                    format!("{:.2}x", seq_s / bat_s),
                ]);
                entries.push(Json::Obj(vec![
                    ("profile".into(), Json::Str(profile.name.into())),
                    (
                        "seek_ms".into(),
                        Json::Num(profile.seek.as_secs_f64() * 1e3),
                    ),
                    ("policy".into(), Json::Str(policy_name.into())),
                    ("batch".into(), Json::Num(batch as f64)),
                    ("object_bytes".into(), Json::Num(object_size as f64)),
                    ("sequential_s".into(), Json::Num(seq_s)),
                    ("batched_s".into(), Json::Num(bat_s)),
                    ("speedup".into(), Json::Num(seq_s / bat_s)),
                ]));
            }
        }
        batched_wins_by_profile.push((profile.name.to_string(), wins, cells));
    }

    table.emit("e_retrieve");
    let best = batched_wins_by_profile
        .iter()
        .max_by_key(|(_, wins, _)| *wins)
        .expect("at least one profile");
    assert!(
        best.1 >= 1,
        "batched retrieval must beat sequential in virtual time on at least \
         one throughput profile"
    );
    for (name, wins, cells) in &batched_wins_by_profile {
        println!("{name}: batched faster in {wins}/{cells} configurations");
    }

    let artifact = Json::Obj(vec![
        ("experiment".into(), Json::Str("retrieve".into())),
        ("seed".into(), Json::Num(SWEEP_SEED as f64)),
        ("quick".into(), Json::Num(if quick { 1.0 } else { 0.0 })),
        ("object_bytes".into(), Json::Num(object_size as f64)),
        ("runs".into(), Json::Arr(entries)),
    ]);
    match artifact.write_artifact("BENCH_retrieve.json") {
        Some(path) => println!("results written to {}", path.display()),
        None => eprintln!("warning: could not write BENCH_retrieve.json"),
    }
}

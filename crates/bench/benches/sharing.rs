//! Criterion benches: secret-sharing split/reconstruct across the
//! parameter space (the CPU cost of the paper's ITS encodings).

use aeon_bench::reference_payload;
use aeon_crypto::ChaChaDrbg;
use aeon_secretshare::lrss::{self, LrssParams};
use aeon_secretshare::packed::{self, PackedParams};
use aeon_secretshare::{shamir, xor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_shamir(c: &mut Criterion) {
    let mut g = c.benchmark_group("shamir");
    let payload = reference_payload(1 << 16, 1);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for (t, n) in [(2usize, 3usize), (3, 5), (5, 8), (10, 15)] {
        g.bench_with_input(
            BenchmarkId::new("split", format!("{t}-of-{n}")),
            &payload,
            |b, d| {
                let mut rng = ChaChaDrbg::from_u64_seed(1);
                b.iter(|| shamir::split(&mut rng, d, t, n).unwrap())
            },
        );
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        let shares = shamir::split(&mut rng, &payload, t, n).unwrap();
        g.bench_with_input(
            BenchmarkId::new("reconstruct", format!("{t}-of-{n}")),
            &shares,
            |b, s| b.iter(|| shamir::reconstruct(&s[..t], t).unwrap()),
        );
    }
    g.finish();
}

fn bench_packed(c: &mut Criterion) {
    let mut g = c.benchmark_group("packed");
    let payload = reference_payload(1 << 14, 3);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for (t, k, n) in [(2usize, 2usize, 6usize), (2, 4, 10), (3, 8, 16)] {
        let params = PackedParams::new(t, k, n).unwrap();
        g.bench_with_input(
            BenchmarkId::new("split", format!("t{t}-k{k}-n{n}")),
            &payload,
            |b, d| {
                let mut rng = ChaChaDrbg::from_u64_seed(4);
                b.iter(|| packed::split(&mut rng, params, d).unwrap())
            },
        );
        let mut rng = ChaChaDrbg::from_u64_seed(5);
        let shares = packed::split(&mut rng, params, &payload).unwrap();
        g.bench_with_input(
            BenchmarkId::new("reconstruct", format!("t{t}-k{k}-n{n}")),
            &shares,
            |b, s| b.iter(|| packed::reconstruct(params, s).unwrap()),
        );
    }
    g.finish();
}

fn bench_lrss_and_xor(c: &mut Criterion) {
    let mut g = c.benchmark_group("wrappers");
    let payload = reference_payload(1 << 12, 6);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("lrss-wrap-3of5", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(7);
        let shares = shamir::split(&mut rng, &payload, 3, 5).unwrap();
        b.iter(|| lrss::wrap(&mut rng, &shares, LrssParams::default()).unwrap())
    });
    g.bench_function("lrss-unwrap-3of5", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(8);
        let shares = shamir::split(&mut rng, &payload, 3, 5).unwrap();
        let wrapped = lrss::wrap(&mut rng, &shares, LrssParams::default()).unwrap();
        b.iter(|| lrss::unwrap(&wrapped))
    });
    g.bench_function("xor-split-5", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(9);
        b.iter(|| xor::split(&mut rng, &payload, 5).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shamir, bench_packed, bench_lrss_and_xor
}
criterion_main!(benches);

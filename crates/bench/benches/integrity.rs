//! Criterion benches: integrity machinery — Merkle trees, hash-based
//! signatures, Pedersen commitments, timestamp issuance.

use aeon_crypto::sig::{MerkleSigner, WotsSigner};
use aeon_crypto::ChaChaDrbg;
use aeon_integrity::merkle::MerkleTree;
use aeon_num::pedersen::Committer;
use aeon_num::ModpGroup;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    for n in [64usize, 1024, 8192] {
        let leaves: Vec<Vec<u8>> = (0..n)
            .map(|i| format!("manifest-{i}").into_bytes())
            .collect();
        g.bench_with_input(BenchmarkId::new("build", n), &leaves, |b, ls| {
            b.iter(|| MerkleTree::build(ls.iter().map(|l| l.as_slice())).unwrap())
        });
        let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice())).unwrap();
        g.bench_with_input(BenchmarkId::new("prove+verify", n), &tree, |b, t| {
            b.iter(|| {
                let p = t.prove(n / 2).unwrap();
                assert!(p.verify(&t.root(), &leaves[n / 2]));
            })
        });
    }
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash-signatures");
    g.bench_function("wots-keygen", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        b.iter(|| WotsSigner::generate(&mut rng))
    });
    g.bench_function("wots-sign", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        b.iter_batched(
            || WotsSigner::generate(&mut rng).0,
            |mut sk| sk.sign(b"timestamp payload").unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("wots-verify", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let (mut sk, pk) = WotsSigner::generate(&mut rng);
        let sig = sk.sign(b"timestamp payload").unwrap();
        b.iter(|| assert!(pk.verify(b"timestamp payload", &sig)))
    });
    g.bench_function("merkle-signer-gen-h4", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(4);
        b.iter(|| MerkleSigner::generate(&mut rng, 4))
    });
    g.finish();
}

fn bench_pedersen(c: &mut Criterion) {
    let mut g = c.benchmark_group("pedersen");
    g.sample_size(10);
    let committer = Committer::new(ModpGroup::rfc3526_2048());
    g.bench_function("commit", |b| {
        b.iter(|| committer.commit(b"manifest digest", &[7u8; 32]))
    });
    let (com, open) = committer.commit(b"manifest digest", &[7u8; 32]);
    g.bench_function("verify", |b| {
        b.iter(|| assert!(committer.verify(&com, b"manifest digest", &open)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_merkle, bench_signatures, bench_pedersen
}
criterion_main!(benches);

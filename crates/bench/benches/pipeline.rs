//! Criterion benches: end-to-end archive ingest/retrieve per policy —
//! the measured CPU side of the Figure 1 trade-off.

use aeon_bench::reference_payload;
use aeon_core::keys::KeyStore;
use aeon_core::pipeline::{self, PipelineConfig};
use aeon_core::{Archive, ArchiveConfig, IntegrityMode, PolicyKind};
use aeon_crypto::{ChaChaDrbg, SuiteId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn policies() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("replication-3", PolicyKind::Replication { copies: 3 }),
        (
            "erasure-4+2",
            PolicyKind::ErasureCoded { data: 4, parity: 2 },
        ),
        (
            "aes-ec-4+2",
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
        ),
        (
            "cascade2-4+2",
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
        ),
        ("aont-rs-4+2", PolicyKind::AontRs { data: 4, parity: 2 }),
        (
            "shamir-3of5",
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
        ),
        (
            "packed-2/2/6",
            PolicyKind::PackedShamir {
                privacy: 2,
                pack: 2,
                shares: 6,
            },
        ),
        ("entropic-4+2", PolicyKind::Entropic { data: 4, parity: 2 }),
    ]
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy-codec");
    let payload = reference_payload(1 << 16, 1);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    let keys = KeyStore::new([1u8; 32]);
    for (name, policy) in policies() {
        g.bench_with_input(BenchmarkId::new("encode", name), &payload, |b, d| {
            let mut rng = ChaChaDrbg::from_u64_seed(1);
            b.iter(|| policy.encode(&mut rng, &keys, "bench-object", d).unwrap())
        });
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        let enc = policy
            .encode(&mut rng, &keys, "bench-object", &payload)
            .unwrap();
        let shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        g.bench_with_input(BenchmarkId::new("decode", name), &shards, |b, s| {
            b.iter(|| policy.decode(&keys, "bench-object", s, &enc.meta).unwrap())
        });
    }
    g.finish();
}

fn bench_archive_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("archive");
    let payload = reference_payload(1 << 16, 3);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("ingest-shamir-3of5", |b| {
        let mut archive = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            })
            .with_integrity(IntegrityMode::DigestOnly),
        )
        .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            archive.ingest(&payload, &format!("bench-{i}")).unwrap()
        })
    });
    g.bench_function("retrieve-shamir-3of5", |b| {
        let mut archive = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            })
            .with_integrity(IntegrityMode::DigestOnly),
        )
        .unwrap();
        let id = archive.ingest(&payload, "bench").unwrap();
        b.iter(|| archive.retrieve(&id).unwrap())
    });
    g.finish();
}

/// Serial vs parallel chunked encode on a multi-MiB object: with ≥2
/// hardware threads the ≥2-worker rows beat the serial row; on a
/// single-CPU host the sweep measures pure scheduling overhead instead,
/// so the host's parallelism is printed alongside the numbers.
fn bench_chunked_workers(c: &mut Criterion) {
    eprintln!(
        "host parallelism: {} hardware thread(s)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let payload = reference_payload(8 << 20, 7); // 8 MiB
    let keys = KeyStore::new([1u8; 32]);
    let heavy = vec![
        (
            "aes-ec-4+2",
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
        ),
        (
            "shamir-3of5",
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
        ),
    ];
    let mut g = c.benchmark_group("chunked-workers");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for (name, policy) in &heavy {
        for workers in [1usize, 2, 4] {
            let cfg = PipelineConfig::serial()
                .with_chunk_size(1 << 20)
                .with_workers(workers);
            g.bench_with_input(
                BenchmarkId::new(format!("encode-{name}"), format!("{workers}w")),
                &payload,
                |b, d| {
                    let mut rng = ChaChaDrbg::from_u64_seed(3);
                    b.iter(|| {
                        pipeline::encode_object(policy, &keys, &mut rng, "bench", d, &cfg).unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

/// Chunk-size sweep at a fixed worker count: smaller chunks expose more
/// parallelism but pay more framing/derivation overhead per byte.
fn bench_chunk_size_sweep(c: &mut Criterion) {
    let payload = reference_payload(8 << 20, 9);
    let keys = KeyStore::new([1u8; 32]);
    let policy = PolicyKind::Encrypted {
        suite: SuiteId::Aes256CtrHmac,
        data: 4,
        parity: 2,
    };
    let mut g = c.benchmark_group("chunk-size-sweep");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for (label, chunk_size) in [("256KiB", 256 * 1024), ("1MiB", 1 << 20), ("4MiB", 4 << 20)] {
        let cfg = PipelineConfig::serial()
            .with_chunk_size(chunk_size)
            .with_workers(4);
        g.bench_with_input(
            BenchmarkId::new("encode-aes-ec-4+2", label),
            &payload,
            |b, d| {
                let mut rng = ChaChaDrbg::from_u64_seed(5);
                b.iter(|| {
                    pipeline::encode_object(&policy, &keys, &mut rng, "bench", d, &cfg).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encode_decode, bench_archive_roundtrip, bench_chunked_workers,
        bench_chunk_size_sweep
}
criterion_main!(benches);

//! Criterion benches: primitive throughput (hashing, AEADs, raw ciphers).
//!
//! These set the baseline for every cost argument in the experiments: the
//! CPU side of re-encryption campaigns is `bytes × (decrypt + encrypt)`
//! at these rates.

use aeon_bench::reference_payload;
use aeon_crypto::aead::{Aead, Aes256CtrHmac, ChaCha20Poly1305};
use aeon_crypto::aes::Aes;
use aeon_crypto::chacha::ChaCha20;
use aeon_crypto::entropic::EntropicCipher;
use aeon_crypto::poly1305::poly1305;
use aeon_crypto::{ChaChaDrbg, Sha256, Sha512};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SIZES: [usize; 3] = [1 << 12, 1 << 16, 1 << 20];

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in SIZES {
        let data = reference_payload(size, 1);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
        g.bench_with_input(BenchmarkId::new("sha512", size), &data, |b, d| {
            b.iter(|| Sha512::digest(d))
        });
    }
    g.finish();
}

fn bench_stream_ciphers(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream");
    for size in SIZES {
        let data = reference_payload(size, 2);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("chacha20", size), &data, |b, d| {
            let cipher = ChaCha20::new(&[7u8; 32], &[1u8; 12]);
            b.iter(|| {
                let mut buf = d.clone();
                cipher.apply_keystream(1, &mut buf);
                buf
            })
        });
        g.bench_with_input(BenchmarkId::new("aes256-ctr", size), &data, |b, d| {
            let aes = Aes::new_256(&[7u8; 32]);
            b.iter(|| {
                let mut buf = d.clone();
                aes.apply_ctr(&[0u8; 16], &mut buf);
                buf
            })
        });
        g.bench_with_input(BenchmarkId::new("poly1305", size), &data, |b, d| {
            b.iter(|| poly1305(&[9u8; 32], d))
        });
    }
    g.finish();
}

fn bench_aeads(c: &mut Criterion) {
    let mut g = c.benchmark_group("aead");
    for size in SIZES {
        let data = reference_payload(size, 3);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(
            BenchmarkId::new("chacha20poly1305-seal", size),
            &data,
            |b, d| {
                let aead = ChaCha20Poly1305::new(&[5u8; 32]);
                b.iter(|| aead.seal(&[0u8; 12], b"", d))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("aes256ctrhmac-seal", size),
            &data,
            |b, d| {
                let aead = Aes256CtrHmac::new(&[5u8; 32]);
                b.iter(|| aead.seal(&[0u8; 12], b"", d))
            },
        );
        g.bench_with_input(BenchmarkId::new("entropic-encrypt", size), &data, |b, d| {
            let cipher = EntropicCipher::new([5u8; 16]);
            let mut rng = ChaChaDrbg::from_u64_seed(4);
            b.iter(|| cipher.encrypt(&mut rng, d))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hashes, bench_stream_ciphers, bench_aeads
}
criterion_main!(benches);

//! Criterion benches: channel costs — DH handshakes (computational),
//! OTP records (ITS), and BSM sessions.

use aeon_bench::reference_payload;
use aeon_channel::bsm::{run_session, BsmParams};
use aeon_channel::dh;
use aeon_channel::qkd::OtpChannel;
use aeon_channel::transport::Link;
use aeon_crypto::ChaChaDrbg;
use aeon_num::ModpGroup;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_dh(c: &mut Criterion) {
    let mut g = c.benchmark_group("dh-channel");
    g.sample_size(10);
    let group = ModpGroup::rfc3526_2048();
    g.bench_function("handshake-modp2048", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        b.iter(|| {
            let mut link = Link::lan();
            dh::handshake(&mut rng, &group, &mut link).unwrap()
        })
    });
    let payload = reference_payload(1 << 16, 2);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("record-send-recv-64k", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let mut link = Link::lan();
        let (mut a, mut bb) = dh::handshake(&mut rng, &group, &mut link).unwrap();
        b.iter(|| {
            a.send(&mut link, &payload);
            bb.recv(&mut link).unwrap()
        })
    });
    g.finish();
}

fn bench_otp_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("otp-channel");
    let payload = reference_payload(1 << 16, 4);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("seal-open-64k", |b| {
        b.iter_batched(
            || {
                let pad = reference_payload((payload.len() + 32) * 2, 5);
                (OtpChannel::new(pad.clone()), OtpChannel::new(pad))
            },
            |(mut tx, mut rx)| {
                let record = tx.seal(&payload).unwrap();
                rx.open(&record).unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_bsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("bsm");
    g.sample_size(10);
    let params = BsmParams::lab();
    g.throughput(Throughput::Bytes(
        (params.stream_blocks * params.block_size) as u64,
    ));
    g.bench_function("session-4096x32", |b| {
        let mut rng = ChaChaDrbg::from_u64_seed(6);
        b.iter(|| run_session(&mut rng, params, 1024))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dh, bench_otp_channel, bench_bsm
}
criterion_main!(benches);

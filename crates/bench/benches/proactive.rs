//! Criterion benches: proactive refresh and redistribution rounds — the
//! protocol cost the paper weighs against re-encryption (E6's CPU side).

use aeon_bench::reference_payload;
use aeon_crypto::ChaChaDrbg;
use aeon_secretshare::{proactive, shamir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("refresh");
    let payload = reference_payload(1 << 16, 1);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for n in [3usize, 5, 9, 17] {
        let t = n / 2 + 1;
        g.bench_with_input(BenchmarkId::new("herzberg-round", n), &payload, |b, d| {
            let mut rng = ChaChaDrbg::from_u64_seed(1);
            let mut shares = shamir::split(&mut rng, d, t, n).unwrap();
            b.iter(|| proactive::refresh(&mut rng, &mut shares, t).unwrap())
        });
    }
    g.finish();
}

fn bench_redistribute(c: &mut Criterion) {
    let mut g = c.benchmark_group("redistribute");
    let payload = reference_payload(1 << 16, 2);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for (from, to) in [
        ((3usize, 5usize), (3usize, 5usize)),
        ((3, 5), (5, 9)),
        ((5, 9), (3, 5)),
    ] {
        let label = format!("{}of{}->{}of{}", from.0, from.1, to.0, to.1);
        g.bench_with_input(BenchmarkId::new("vsr", label), &payload, |b, d| {
            let mut rng = ChaChaDrbg::from_u64_seed(3);
            let shares = shamir::split(&mut rng, d, from.0, from.1).unwrap();
            b.iter(|| proactive::redistribute(&mut rng, &shares, from.0, to.0, to.1).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_refresh, bench_redistribute
}
criterion_main!(benches);

//! Criterion benches: Reed–Solomon encode/decode throughput.

use aeon_bench::reference_payload;
use aeon_erasure::{ErasureCode, ReedSolomon, Replicator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_rs(c: &mut Criterion) {
    let mut g = c.benchmark_group("reed-solomon");
    let payload = reference_payload(1 << 20, 1);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for (k, m) in [(4usize, 2usize), (6, 3), (10, 4), (16, 4)] {
        let rs = ReedSolomon::new(k, m).unwrap();
        g.bench_with_input(
            BenchmarkId::new("encode", format!("{k}+{m}")),
            &payload,
            |b, d| b.iter(|| rs.encode(d).unwrap()),
        );
        // Decode with the maximum number of data-shard losses (worst case:
        // every missing shard must be rebuilt from parity).
        let encoded = rs.encode(&payload).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        for s in shards.iter_mut().take(m) {
            *s = None;
        }
        g.bench_with_input(
            BenchmarkId::new("decode-worst", format!("{k}+{m}")),
            &shards,
            |b, s| b.iter(|| rs.decode(s).unwrap()),
        );
    }
    g.finish();
}

fn bench_replication(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication");
    let payload = reference_payload(1 << 20, 2);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    let rep = Replicator::new(3).unwrap();
    g.bench_function("encode-3x", |b| b.iter(|| rep.encode(&payload).unwrap()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rs, bench_replication
}
criterion_main!(benches);

//! From-scratch cryptographic primitives and the cipher-agility layer.
//!
//! Long-term archives cannot bind themselves to a single cipher: the paper's
//! central observation is that *every* computationally secure primitive may
//! be broken within an archival lifetime. This crate therefore provides
//! both the primitives themselves and the machinery to treat them as
//! replaceable, breakable components:
//!
//! * Hashing: [`sha2::Sha256`], [`sha2::Sha512`], [`hmac`], [`hkdf`].
//! * Symmetric encryption: [`chacha::ChaCha20`], [`aes::Aes256`] (+ CTR),
//!   AEADs ([`aead::ChaCha20Poly1305`], [`aead::Aes256CtrHmac`]), and the
//!   information-theoretic [`otp::OneTimePad`].
//! * Entropically secure encryption ([`entropic`]) — shorter-than-message
//!   keys for high-entropy plaintexts (the "entropically secure encryption"
//!   point in the paper's Figure 1).
//! * Hash-based signatures ([`sig`]): Lamport and WOTS one-time signatures
//!   plus a Merkle many-time scheme — the natural signature family for
//!   timestamp chains because their security reduces to preimage
//!   resistance alone.
//! * Randomness: a seedable ChaCha-based [`drbg::ChaChaDrbg`] behind the
//!   small [`drbg::CryptoRng`] trait, keeping every higher-level protocol
//!   deterministic under test.
//! * Agility: a [`suite`] registry that names every suite, tracks a
//!   simulated cryptanalytic [`suite::BreakSchedule`], and a
//!   [`cascade`] robust combiner that layers independent suites so the
//!   stack stays secure while *any* layer survives.
//!
//! # Security disclaimer
//!
//! These are clean-room educational implementations: correct against
//! standard test vectors, but not constant-time and not audited. They exist
//! so the archival-system layers above have a real, breakable,
//! swappable crypto substrate — not to protect production keys.
//!
//! # Examples
//!
//! ```
//! use aeon_crypto::aead::{Aead, ChaCha20Poly1305};
//!
//! let key = [7u8; 32];
//! let aead = ChaCha20Poly1305::new(&key);
//! let ct = aead.seal(&[0u8; 12], b"associated", b"plaintext");
//! let pt = aead.open(&[0u8; 12], b"associated", &ct).unwrap();
//! assert_eq!(pt, b"plaintext");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod aead;
pub mod aes;
pub mod cascade;
pub mod chacha;
pub mod drbg;
pub mod entropic;
pub mod hkdf;
pub mod hmac;
pub mod otp;
pub mod poly1305;
pub mod sha2;
pub mod sig;
pub mod suite;

pub use aead::Aead;
pub use drbg::{random_array, ChaChaDrbg, CryptoRng};
pub use sha2::{Sha256, Sha512};
pub use suite::{BreakSchedule, SecurityLevel, SuiteId, SuiteRegistry};

//! Hash-based signatures: Lamport and Winternitz one-time schemes plus a
//! Merkle many-time scheme.
//!
//! Timestamp chains need signatures whose security rests on as little as
//! possible: hash-based signatures reduce to (second-)preimage resistance
//! of the underlying hash — no number-theoretic assumptions, believed
//! post-quantum — which makes them the natural choice for long-term
//! integrity (§3.3 of the paper). The Merkle scheme here is a simplified
//! XMSS ancestor: 2^h Winternitz one-time keys authenticated by a hash
//! tree, signed leaves consumed strictly left to right.

use crate::drbg::CryptoRng;
use crate::sha2::Sha256;

/// Errors from signature operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigError {
    /// All one-time leaves of a Merkle key have been used.
    KeyExhausted,
    /// Signature bytes are malformed.
    Malformed,
}

impl core::fmt::Display for SigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SigError::KeyExhausted => write!(f, "one-time signature key exhausted"),
            SigError::Malformed => write!(f, "malformed signature"),
        }
    }
}

impl std::error::Error for SigError {}

// ---------------------------------------------------------------------
// Lamport one-time signatures
// ---------------------------------------------------------------------

/// A Lamport one-time signing key: 2×256 random 32-byte preimages.
#[derive(Debug, Clone)]
pub struct LamportSigner {
    sk: Vec<[u8; 32]>, // 512 entries: [bit=0 preimages..., bit=1 preimages...]
    used: bool,
}

/// A Lamport public key: hashes of all preimages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamportPublicKey {
    pk: Vec<[u8; 32]>,
}

/// A Lamport signature: 256 revealed preimages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamportSignature {
    reveals: Vec<[u8; 32]>,
}

impl LamportSigner {
    /// Generates a keypair from the RNG.
    pub fn generate<R: CryptoRng + ?Sized>(rng: &mut R) -> (Self, LamportPublicKey) {
        let mut sk = Vec::with_capacity(512);
        for _ in 0..512 {
            sk.push(crate::drbg::random_array::<32, _>(rng));
        }
        let pk = sk.iter().map(|s| Sha256::digest(s)).collect();
        (LamportSigner { sk, used: false }, LamportPublicKey { pk })
    }

    /// Signs a message (one time only).
    ///
    /// # Errors
    ///
    /// Returns [`SigError::KeyExhausted`] on a second signing attempt:
    /// revealing preimages for two different digests breaks the scheme.
    pub fn sign(&mut self, message: &[u8]) -> Result<LamportSignature, SigError> {
        if self.used {
            return Err(SigError::KeyExhausted);
        }
        self.used = true;
        let digest = Sha256::digest(message);
        let mut reveals = Vec::with_capacity(256);
        for i in 0..256 {
            let bit = (digest[i / 8] >> (7 - i % 8)) & 1;
            reveals.push(self.sk[(bit as usize) * 256 + i]);
        }
        Ok(LamportSignature { reveals })
    }
}

impl LamportPublicKey {
    /// Verifies a signature over `message`.
    pub fn verify(&self, message: &[u8], sig: &LamportSignature) -> bool {
        if sig.reveals.len() != 256 || self.pk.len() != 512 {
            return false;
        }
        let digest = Sha256::digest(message);
        for i in 0..256 {
            let bit = (digest[i / 8] >> (7 - i % 8)) & 1;
            if Sha256::digest(&sig.reveals[i]) != self.pk[(bit as usize) * 256 + i] {
                return false;
            }
        }
        true
    }
}

// ---------------------------------------------------------------------
// Winternitz one-time signatures (w = 16)
// ---------------------------------------------------------------------

const W: u32 = 16;
/// 256-bit digest / 4 bits per chain.
const LEN1: usize = 64;
/// Checksum chains: max checksum 64·15 = 960 < 16³.
const LEN2: usize = 3;
const CHAINS: usize = LEN1 + LEN2;

fn chain(start: &[u8; 32], from: u32, to: u32) -> [u8; 32] {
    let mut v = *start;
    for step in from..to {
        let mut h = Sha256::new();
        h.update(&v);
        h.update(&[step as u8]);
        v = h.finalize();
    }
    v
}

fn digits(message: &[u8]) -> [u32; CHAINS] {
    let digest = Sha256::digest(message);
    let mut out = [0u32; CHAINS];
    for i in 0..LEN1 {
        let byte = digest[i / 2];
        out[i] = if i % 2 == 0 {
            (byte >> 4) as u32
        } else {
            (byte & 0x0F) as u32
        };
    }
    // Checksum digits (base-w little-endian of sum of complements).
    let checksum: u32 = out[..LEN1].iter().map(|&d| W - 1 - d).sum();
    out[LEN1] = checksum & 0x0F;
    out[LEN1 + 1] = (checksum >> 4) & 0x0F;
    out[LEN1 + 2] = (checksum >> 8) & 0x0F;
    out
}

/// A Winternitz (w = 16) one-time signer.
#[derive(Debug, Clone)]
pub struct WotsSigner {
    sk: Vec<[u8; 32]>,
    used: bool,
}

/// A compressed WOTS public key (hash of all chain ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WotsPublicKey(pub [u8; 32]);

/// A WOTS signature: one intermediate chain value per digit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WotsSignature {
    chains: Vec<[u8; 32]>,
}

impl WotsSigner {
    /// Generates a keypair from the RNG.
    pub fn generate<R: CryptoRng + ?Sized>(rng: &mut R) -> (Self, WotsPublicKey) {
        let sk: Vec<[u8; 32]> = (0..CHAINS)
            .map(|_| crate::drbg::random_array::<32, _>(rng))
            .collect();
        let pk = Self::public_from_sk(&sk);
        (WotsSigner { sk, used: false }, pk)
    }

    fn public_from_sk(sk: &[[u8; 32]]) -> WotsPublicKey {
        let mut h = Sha256::new();
        for s in sk {
            h.update(&chain(s, 0, W - 1));
        }
        WotsPublicKey(h.finalize())
    }

    /// Signs a message (one time only).
    ///
    /// # Errors
    ///
    /// Returns [`SigError::KeyExhausted`] on reuse.
    pub fn sign(&mut self, message: &[u8]) -> Result<WotsSignature, SigError> {
        if self.used {
            return Err(SigError::KeyExhausted);
        }
        self.used = true;
        let d = digits(message);
        let chains = self
            .sk
            .iter()
            .zip(d.iter())
            .map(|(s, &digit)| chain(s, 0, digit))
            .collect();
        Ok(WotsSignature { chains })
    }
}

impl WotsPublicKey {
    /// Verifies a signature by completing each chain and hashing.
    pub fn verify(&self, message: &[u8], sig: &WotsSignature) -> bool {
        if sig.chains.len() != CHAINS {
            return false;
        }
        let d = digits(message);
        let mut h = Sha256::new();
        for (c, &digit) in sig.chains.iter().zip(d.iter()) {
            h.update(&chain(c, digit, W - 1));
        }
        h.finalize() == self.0
    }
}

// ---------------------------------------------------------------------
// Merkle many-time signatures over WOTS leaves
// ---------------------------------------------------------------------

/// A Merkle signature-scheme signer with `2^height` one-time WOTS keys.
///
/// # Examples
///
/// ```
/// use aeon_crypto::sig::MerkleSigner;
/// use aeon_crypto::ChaChaDrbg;
///
/// let mut rng = ChaChaDrbg::from_u64_seed(1);
/// let mut signer = MerkleSigner::generate(&mut rng, 3); // 8 signatures
/// let pk = signer.public_key();
/// let sig = signer.sign(b"timestamp record")?;
/// assert!(pk.verify(b"timestamp record", &sig));
/// # Ok::<(), aeon_crypto::sig::SigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MerkleSigner {
    height: usize,
    leaves: Vec<WotsSigner>,
    leaf_pks: Vec<WotsPublicKey>,
    tree: Vec<Vec<[u8; 32]>>, // tree[0] = leaf hashes, tree[h] = [root]
    next: usize,
}

/// The Merkle scheme public key (tree root and height).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MerklePublicKey {
    /// Root hash of the key tree.
    pub root: [u8; 32],
    /// Tree height.
    pub height: usize,
}

/// A Merkle signature: the WOTS signature, the leaf public key, the leaf
/// index, and the authentication path to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleSignature {
    /// Index of the one-time key used.
    pub leaf_index: usize,
    /// The one-time signature.
    pub wots: WotsSignature,
    /// The one-time public key (verified against the path).
    pub leaf_pk: WotsPublicKey,
    /// Sibling hashes from leaf to root.
    pub auth_path: Vec<[u8; 32]>,
}

fn hash_pair(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(a);
    h.update(b);
    h.finalize()
}

fn leaf_hash(pk: &WotsPublicKey) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"leaf");
    h.update(&pk.0);
    h.finalize()
}

impl MerkleSigner {
    /// Generates a signer with `2^height` one-time keys.
    ///
    /// # Panics
    ///
    /// Panics if `height > 16` (65 536 leaves) to keep generation bounded.
    pub fn generate<R: CryptoRng + ?Sized>(rng: &mut R, height: usize) -> Self {
        assert!(height <= 16, "Merkle tree height too large");
        let n = 1usize << height;
        let mut leaves = Vec::with_capacity(n);
        let mut leaf_pks = Vec::with_capacity(n);
        for _ in 0..n {
            let (sk, pk) = WotsSigner::generate(rng);
            leaves.push(sk);
            leaf_pks.push(pk);
        }
        let mut tree = Vec::with_capacity(height + 1);
        tree.push(leaf_pks.iter().map(leaf_hash).collect::<Vec<_>>());
        for level in 0..height {
            let prev = &tree[level];
            let next: Vec<[u8; 32]> = prev
                .chunks_exact(2)
                .map(|pair| hash_pair(&pair[0], &pair[1]))
                .collect();
            tree.push(next);
        }
        MerkleSigner {
            height,
            leaves,
            leaf_pks,
            tree,
            next: 0,
        }
    }

    /// Returns the public key.
    pub fn public_key(&self) -> MerklePublicKey {
        MerklePublicKey {
            root: self.tree[self.height][0],
            height: self.height,
        }
    }

    /// Number of signatures remaining.
    pub fn remaining(&self) -> usize {
        (1 << self.height) - self.next
    }

    /// Signs a message with the next unused leaf.
    ///
    /// # Errors
    ///
    /// Returns [`SigError::KeyExhausted`] when all leaves are consumed.
    pub fn sign(&mut self, message: &[u8]) -> Result<MerkleSignature, SigError> {
        if self.next >= 1 << self.height {
            return Err(SigError::KeyExhausted);
        }
        let idx = self.next;
        self.next += 1;
        let wots = self.leaves[idx].sign(message)?;
        let mut auth_path = Vec::with_capacity(self.height);
        let mut node = idx;
        for level in 0..self.height {
            auth_path.push(self.tree[level][node ^ 1]);
            node >>= 1;
        }
        Ok(MerkleSignature {
            leaf_index: idx,
            wots,
            leaf_pk: self.leaf_pks[idx],
            auth_path,
        })
    }
}

impl MerklePublicKey {
    /// Verifies a Merkle signature.
    pub fn verify(&self, message: &[u8], sig: &MerkleSignature) -> bool {
        if sig.auth_path.len() != self.height || sig.leaf_index >= 1 << self.height {
            return false;
        }
        if !sig.leaf_pk.verify(message, &sig.wots) {
            return false;
        }
        let mut node = leaf_hash(&sig.leaf_pk);
        let mut idx = sig.leaf_index;
        for sibling in &sig.auth_path {
            node = if idx & 1 == 0 {
                hash_pair(&node, sibling)
            } else {
                hash_pair(sibling, &node)
            };
            idx >>= 1;
        }
        node == self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::ChaChaDrbg;

    fn rng() -> ChaChaDrbg {
        ChaChaDrbg::from_u64_seed(2024)
    }

    #[test]
    fn lamport_sign_verify() {
        let mut r = rng();
        let (mut sk, pk) = LamportSigner::generate(&mut r);
        let sig = sk.sign(b"hello").unwrap();
        assert!(pk.verify(b"hello", &sig));
        assert!(!pk.verify(b"hellO", &sig));
    }

    #[test]
    fn lamport_single_use_enforced() {
        let mut r = rng();
        let (mut sk, _) = LamportSigner::generate(&mut r);
        sk.sign(b"first").unwrap();
        assert_eq!(sk.sign(b"second").unwrap_err(), SigError::KeyExhausted);
    }

    #[test]
    fn wots_sign_verify() {
        let mut r = rng();
        let (mut sk, pk) = WotsSigner::generate(&mut r);
        let sig = sk.sign(b"timestamped record").unwrap();
        assert!(pk.verify(b"timestamped record", &sig));
        assert!(!pk.verify(b"tampered record!!", &sig));
    }

    #[test]
    fn wots_wrong_key_rejects() {
        let mut r = rng();
        let (mut sk1, _) = WotsSigner::generate(&mut r);
        let (_, pk2) = WotsSigner::generate(&mut r);
        let sig = sk1.sign(b"m").unwrap();
        assert!(!pk2.verify(b"m", &sig));
    }

    #[test]
    fn wots_checksum_prevents_digit_increase() {
        // Flipping the message changes digits; verify must fail rather than
        // allow forged chains. (Indirect test of the checksum.)
        let mut r = rng();
        let (mut sk, pk) = WotsSigner::generate(&mut r);
        let sig = sk.sign(b"aaaaaaa").unwrap();
        for probe in [b"aaaaaab".as_ref(), b"zzzzzzz", b""] {
            assert!(!pk.verify(probe, &sig));
        }
    }

    #[test]
    fn merkle_all_leaves_usable() {
        let mut r = rng();
        let mut signer = MerkleSigner::generate(&mut r, 3);
        let pk = signer.public_key();
        assert_eq!(signer.remaining(), 8);
        for i in 0..8 {
            let msg = format!("record {i}");
            let sig = signer.sign(msg.as_bytes()).unwrap();
            assert_eq!(sig.leaf_index, i);
            assert!(pk.verify(msg.as_bytes(), &sig), "leaf {i}");
        }
        assert_eq!(signer.remaining(), 0);
        assert_eq!(signer.sign(b"x").unwrap_err(), SigError::KeyExhausted);
    }

    #[test]
    fn merkle_cross_message_rejected() {
        let mut r = rng();
        let mut signer = MerkleSigner::generate(&mut r, 2);
        let pk = signer.public_key();
        let sig = signer.sign(b"message A").unwrap();
        assert!(!pk.verify(b"message B", &sig));
    }

    #[test]
    fn merkle_tampered_path_rejected() {
        let mut r = rng();
        let mut signer = MerkleSigner::generate(&mut r, 2);
        let pk = signer.public_key();
        let mut sig = signer.sign(b"msg").unwrap();
        sig.auth_path[0][0] ^= 1;
        assert!(!pk.verify(b"msg", &sig));
    }

    #[test]
    fn merkle_wrong_index_rejected() {
        let mut r = rng();
        let mut signer = MerkleSigner::generate(&mut r, 2);
        let pk = signer.public_key();
        let mut sig = signer.sign(b"msg").unwrap();
        sig.leaf_index = 3;
        assert!(!pk.verify(b"msg", &sig));
        sig.leaf_index = 99;
        assert!(!pk.verify(b"msg", &sig));
    }

    #[test]
    fn merkle_height_zero() {
        let mut r = rng();
        let mut signer = MerkleSigner::generate(&mut r, 0);
        let pk = signer.public_key();
        let sig = signer.sign(b"only one").unwrap();
        assert!(pk.verify(b"only one", &sig));
        assert!(signer.sign(b"no more").is_err());
    }
}

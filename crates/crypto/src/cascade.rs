//! Cascade ciphers (robust combiners) à la ArchiveSafeLT.
//!
//! A cascade encrypts under several independent suites in sequence, each
//! layer with its own key. Maurer & Massey's classic result says a cascade
//! is at least as strong as its *first* cipher against known-plaintext
//! attacks, and in the random-oracle style folklore treatment the cascade
//! stands while at least one layer stands. ArchiveSafeLT uses exactly this
//! construction to hedge against any single cipher falling, at the cost of
//! storing a growing key history instead of re-encrypting data.
//!
//! The cascade here supports *re-wrapping*: adding a fresh outer layer
//! under a new suite without touching inner layers — the cheap emergency
//! response when an inner cipher is broken (the data still must be read
//! and rewritten, but no decryption keys need to be touched).

use crate::aead::AuthError;
use crate::hkdf;
use crate::suite::{BreakSchedule, SimYear, SuiteId, SuiteRegistry};

/// Errors from cascade operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CascadeError {
    /// No layers were specified.
    Empty,
    /// A layer failed authentication on decryption.
    LayerAuth {
        /// Index of the failing layer (outermost is last applied).
        layer: usize,
    },
    /// A suite in the layer list is not a plain AEAD (e.g. OTP).
    UnsupportedSuite(SuiteId),
}

impl core::fmt::Display for CascadeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CascadeError::Empty => write!(f, "cascade has no layers"),
            CascadeError::LayerAuth { layer } => {
                write!(f, "cascade layer {layer} failed authentication")
            }
            CascadeError::UnsupportedSuite(s) => write!(f, "suite {s} cannot join a cascade"),
        }
    }
}

impl std::error::Error for CascadeError {}

impl From<AuthError> for CascadeError {
    fn from(_: AuthError) -> Self {
        CascadeError::LayerAuth { layer: 0 }
    }
}

/// A cascade of AEAD layers with per-layer keys derived from a master key.
///
/// Layer keys are derived as `HKDF(master, "layer-i-<suite>")`, so the
/// layers are independent: compromising one layer key reveals nothing
/// about the others (up to HKDF's PRF security).
///
/// # Examples
///
/// ```
/// use aeon_crypto::cascade::Cascade;
/// use aeon_crypto::suite::SuiteId;
///
/// let cascade = Cascade::new(
///     &[SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
///     &[1u8; 32],
/// )?;
/// let ct = cascade.encrypt(b"object-1", b"payload");
/// assert_eq!(cascade.decrypt(b"object-1", &ct)?, b"payload");
/// # Ok::<(), aeon_crypto::cascade::CascadeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cascade {
    layers: Vec<(SuiteId, [u8; 32])>,
}

impl Cascade {
    /// Builds a cascade over the given suites (applied in order; the last
    /// suite is the outermost layer).
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError::Empty`] for an empty suite list and
    /// [`CascadeError::UnsupportedSuite`] for non-AEAD suites.
    pub fn new(suites: &[SuiteId], master_key: &[u8; 32]) -> Result<Self, CascadeError> {
        if suites.is_empty() {
            return Err(CascadeError::Empty);
        }
        let mut layers = Vec::with_capacity(suites.len());
        for (i, &s) in suites.iter().enumerate() {
            if SuiteRegistry::new().instantiate(s, &[0u8; 32]).is_none() {
                return Err(CascadeError::UnsupportedSuite(s));
            }
            let info = format!("layer-{i}-{s}");
            let okm = hkdf::derive(b"aeon-cascade", master_key, info.as_bytes(), 32);
            let mut key = [0u8; 32];
            key.copy_from_slice(&okm);
            layers.push((s, key));
        }
        Ok(Cascade { layers })
    }

    /// The suites in application order.
    pub fn suites(&self) -> Vec<SuiteId> {
        self.layers.iter().map(|(s, _)| *s).collect()
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Encrypts plaintext through every layer. The `context` binds the
    /// ciphertext to an object identity (used for nonce derivation and as
    /// AAD in every layer).
    pub fn encrypt(&self, context: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let reg = SuiteRegistry::new();
        let mut data = plaintext.to_vec();
        for (i, (suite, key)) in self.layers.iter().enumerate() {
            let cipher = reg.instantiate(*suite, key).expect("validated in new()");
            let nonce = layer_nonce(context, i);
            data = cipher.seal(&nonce, context, &data);
        }
        data
    }

    /// Decrypts through every layer in reverse.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError::LayerAuth`] identifying the first layer that
    /// fails to authenticate.
    pub fn decrypt(&self, context: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, CascadeError> {
        let reg = SuiteRegistry::new();
        let mut data = ciphertext.to_vec();
        for (i, (suite, key)) in self.layers.iter().enumerate().rev() {
            let cipher = reg.instantiate(*suite, key).expect("validated in new()");
            let nonce = layer_nonce(context, i);
            data = cipher
                .open(&nonce, context, &data)
                .map_err(|_| CascadeError::LayerAuth { layer: i })?;
        }
        Ok(data)
    }

    /// Adds a fresh outer layer (re-wrap). Existing ciphertexts must be
    /// re-encrypted through [`Cascade::rewrap`]; new encryptions include
    /// the layer automatically.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError::UnsupportedSuite`] for non-AEAD suites.
    pub fn add_layer(&mut self, suite: SuiteId, master_key: &[u8; 32]) -> Result<(), CascadeError> {
        if SuiteRegistry::new()
            .instantiate(suite, &[0u8; 32])
            .is_none()
        {
            return Err(CascadeError::UnsupportedSuite(suite));
        }
        let i = self.layers.len();
        let info = format!("layer-{i}-{suite}");
        let okm = hkdf::derive(b"aeon-cascade", master_key, info.as_bytes(), 32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&okm);
        self.layers.push((suite, key));
        Ok(())
    }

    /// Wraps an existing ciphertext (produced before the newest layers were
    /// added) through the layers from `from_depth` onward. This is the I/O
    /// operation ArchiveSafeLT performs when enough inner layers are broken.
    pub fn rewrap(&self, context: &[u8], ciphertext: &[u8], from_depth: usize) -> Vec<u8> {
        let reg = SuiteRegistry::new();
        let mut data = ciphertext.to_vec();
        for (i, (suite, key)) in self.layers.iter().enumerate().skip(from_depth) {
            let cipher = reg.instantiate(*suite, key).expect("validated");
            let nonce = layer_nonce(context, i);
            data = cipher.seal(&nonce, context, &data);
        }
        data
    }

    /// Decrypts a ciphertext that was only wrapped through the first
    /// `depth` layers.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError::LayerAuth`] on authentication failure.
    pub fn decrypt_at_depth(
        &self,
        context: &[u8],
        ciphertext: &[u8],
        depth: usize,
    ) -> Result<Vec<u8>, CascadeError> {
        let reg = SuiteRegistry::new();
        let mut data = ciphertext.to_vec();
        for (i, (suite, key)) in self.layers.iter().enumerate().take(depth).rev() {
            let cipher = reg.instantiate(*suite, key).expect("validated");
            let nonce = layer_nonce(context, i);
            data = cipher
                .open(&nonce, context, &data)
                .map_err(|_| CascadeError::LayerAuth { layer: i })?;
        }
        Ok(data)
    }

    /// Returns `true` if the cascade is still confidential at `year`: at
    /// least one layer's suite is unbroken.
    pub fn is_secure_at(&self, schedule: &BreakSchedule, year: SimYear) -> bool {
        self.layers
            .iter()
            .any(|(suite, _)| !schedule.is_broken(*suite, year))
    }

    /// Returns the first year at which *every* layer is broken, if the
    /// schedule breaks them all.
    pub fn fully_broken_year(&self, schedule: &BreakSchedule) -> Option<SimYear> {
        self.layers
            .iter()
            .map(|(suite, _)| schedule.break_year(*suite))
            .collect::<Option<Vec<_>>>()
            .map(|years| years.into_iter().max().expect("non-empty cascade"))
    }
}

fn layer_nonce(context: &[u8], layer: usize) -> [u8; 12] {
    let mut ctx = context.to_vec();
    ctx.extend_from_slice(&(layer as u64).to_be_bytes());
    crate::aead::derive_nonce(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer() -> Cascade {
        Cascade::new(
            &[SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            &[9u8; 32],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let c = two_layer();
        let ct = c.encrypt(b"ctx", b"hello");
        assert_eq!(c.decrypt(b"ctx", &ct).unwrap(), b"hello");
    }

    #[test]
    fn ciphertext_grows_by_tag_per_layer() {
        let c = two_layer();
        let ct = c.encrypt(b"ctx", b"12345678");
        // AES layer adds 32-byte tag, ChaCha layer adds 16.
        assert_eq!(ct.len(), 8 + 32 + 16);
    }

    #[test]
    fn empty_layers_rejected() {
        assert_eq!(
            Cascade::new(&[], &[0u8; 32]).unwrap_err(),
            CascadeError::Empty
        );
    }

    #[test]
    fn otp_suite_rejected() {
        assert_eq!(
            Cascade::new(&[SuiteId::OneTimePad], &[0u8; 32]).unwrap_err(),
            CascadeError::UnsupportedSuite(SuiteId::OneTimePad)
        );
    }

    #[test]
    fn tamper_identifies_outer_layer() {
        let c = two_layer();
        let mut ct = c.encrypt(b"ctx", b"payload");
        let last = ct.len() - 1;
        ct[last] ^= 1;
        assert_eq!(
            c.decrypt(b"ctx", &ct).unwrap_err(),
            CascadeError::LayerAuth { layer: 1 }
        );
    }

    #[test]
    fn wrong_context_fails() {
        let c = two_layer();
        let ct = c.encrypt(b"ctx-a", b"payload");
        assert!(c.decrypt(b"ctx-b", &ct).is_err());
    }

    #[test]
    fn rewrap_and_decrypt() {
        let mut c = Cascade::new(&[SuiteId::Aes256CtrHmac], &[9u8; 32]).unwrap();
        let old_ct = c.encrypt(b"obj", b"data");
        // AES is about to fall: add a ChaCha outer layer.
        c.add_layer(SuiteId::ChaCha20Poly1305, &[9u8; 32]).unwrap();
        let new_ct = c.rewrap(b"obj", &old_ct, 1);
        assert_eq!(c.decrypt(b"obj", &new_ct).unwrap(), b"data");
        // Old ciphertext still decryptable at depth 1.
        assert_eq!(c.decrypt_at_depth(b"obj", &old_ct, 1).unwrap(), b"data");
    }

    #[test]
    fn security_against_schedule() {
        let c = two_layer();
        let schedule = BreakSchedule::pessimistic(); // AES 2045, ChaCha 2060
        assert!(c.is_secure_at(&schedule, 2044));
        assert!(c.is_secure_at(&schedule, 2050)); // ChaCha still standing
        assert!(!c.is_secure_at(&schedule, 2060));
        assert_eq!(c.fully_broken_year(&schedule), Some(2060));

        let never = BreakSchedule::new();
        assert_eq!(c.fully_broken_year(&never), None);
        assert!(c.is_secure_at(&never, 9999));
    }

    #[test]
    fn deterministic_same_master_key() {
        let a = two_layer();
        let b = two_layer();
        assert_eq!(a.encrypt(b"ctx", b"m"), b.encrypt(b"ctx", b"m"));
    }
}

//! The ChaCha20 stream cipher (RFC 8439).

/// The ChaCha20 stream cipher with a 256-bit key and 96-bit nonce.
///
/// # Examples
///
/// ```
/// use aeon_crypto::chacha::ChaCha20;
///
/// let key = [1u8; 32];
/// let nonce = [2u8; 12];
/// let mut buf = b"attack at dawn".to_vec();
/// ChaCha20::new(&key, &nonce).apply_keystream(1, &mut buf);
/// ChaCha20::new(&key, &nonce).apply_keystream(1, &mut buf);
/// assert_eq!(buf, b"attack at dawn");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher instance from a key and nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        state[12] = 0; // counter, set per block
        for i in 0..3 {
            state[13 + i] =
                u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        ChaCha20 { state }
    }

    /// Generates the 64-byte keystream block for the given counter.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut working = self.state;
        working[12] = counter;
        let initial = working;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let v = working[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// XORs the keystream (starting at block `initial_counter`) into `data`.
    ///
    /// Encryption and decryption are the same operation.
    pub fn apply_keystream(&self, initial_counter: u32, data: &mut [u8]) {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(64) {
            let ks = self.block(counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha2::to_hex;

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector.
        let key = rfc_key();
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = ChaCha20::new(&key, &nonce).block(1);
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key = rfc_key();
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut buf = plaintext.to_vec();
        ChaCha20::new(&key, &nonce).apply_keystream(1, &mut buf);
        assert_eq!(
            to_hex(&buf[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        // Round-trip.
        ChaCha20::new(&key, &nonce).apply_keystream(1, &mut buf);
        assert_eq!(buf, plaintext);
    }

    #[test]
    fn distinct_counters_distinct_blocks() {
        let c = ChaCha20::new(&[1u8; 32], &[2u8; 12]);
        assert_ne!(c.block(0), c.block(1));
        assert_eq!(c.block(7), c.block(7));
    }

    #[test]
    fn partial_block_handling() {
        let c = ChaCha20::new(&[9u8; 32], &[3u8; 12]);
        for len in [0usize, 1, 63, 64, 65, 130] {
            let mut data = vec![0xAB; len];
            c.apply_keystream(0, &mut data);
            let mut again = vec![0xAB; len];
            c.apply_keystream(0, &mut again);
            assert_eq!(data, again);
            c.apply_keystream(0, &mut data);
            assert_eq!(data, vec![0xAB; len], "len {len}");
        }
    }
}

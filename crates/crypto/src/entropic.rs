//! Entropically secure encryption (Dodis–Smith style).
//!
//! Perfect secrecy demands keys as long as the message (Shannon), but if
//! the *message itself* has high min-entropy — true of compressed or
//! encrypted archival blobs — information-theoretic secrecy is achievable
//! with much shorter keys. This module implements the classic
//! XOR-with-δ-biased-pad construction: the pad is derived from a short key
//! and a public random nonce through the *powering* small-bias family in
//! GF(2^128) (pad block `j` is `k · r^(j+1)`), which is a δ-biased sample
//! space — an information-theoretic object, not a PRG — so the guarantee
//! does not rest on any hardness assumption.
//!
//! The scheme occupies the "entropically secure encryption" point in the
//! paper's Figure 1: storage cost barely above plaintext (16-byte nonce),
//! security information-theoretic *conditioned on message entropy*, which
//! is weaker than secret sharing (unconditional) but far stronger than
//! computational encryption against a harvest-now-decrypt-later adversary.

use crate::drbg::CryptoRng;

/// GF(2^128) multiplication with the GCM polynomial
/// `x^128 + x^7 + x^2 + x + 1`, operating on big-endian 16-byte blocks
/// interpreted with bit 0 as the x^127 coefficient (GCM convention is
/// irrelevant here as long as we are internally consistent).
fn gf128_mul(a: u128, b: u128) -> u128 {
    let mut acc: u128 = 0;
    let mut v = a;
    for i in 0..128 {
        if (b >> (127 - i)) & 1 == 1 {
            acc ^= v;
        }
        let carry = v & 1;
        v >>= 1;
        if carry == 1 {
            v ^= 0xE100_0000_0000_0000_0000_0000_0000_0000;
        }
    }
    acc
}

/// Ciphertext of the entropically secure scheme: a public nonce plus the
/// XOR-padded body. Total expansion over the plaintext: 16 bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntropicCiphertext {
    /// The public random nonce `r` (the δ-biased family index).
    pub nonce: [u8; 16],
    /// `m ⊕ pad(k, r)`.
    pub body: Vec<u8>,
}

/// Entropically secure cipher with a 16-byte key.
///
/// Security requires the plaintext to have min-entropy at least
/// `|m| - |k| + 2·log(1/ε)` bits; for low-entropy messages use real
/// encryption or secret sharing instead.
///
/// # Examples
///
/// ```
/// use aeon_crypto::entropic::EntropicCipher;
/// use aeon_crypto::ChaChaDrbg;
///
/// let cipher = EntropicCipher::new([7u8; 16]);
/// let mut rng = ChaChaDrbg::from_u64_seed(1);
/// let ct = cipher.encrypt(&mut rng, b"high-entropy compressed blob .....");
/// assert_eq!(cipher.decrypt(&ct), b"high-entropy compressed blob .....");
/// ```
#[derive(Debug, Clone)]
pub struct EntropicCipher {
    key: u128,
}

impl EntropicCipher {
    /// Key length in bytes.
    pub const KEY_LEN: usize = 16;
    /// Per-message storage overhead in bytes (the public nonce).
    pub const OVERHEAD: usize = 16;

    /// Creates a cipher from a 16-byte key.
    pub fn new(key: [u8; 16]) -> Self {
        EntropicCipher {
            key: u128::from_be_bytes(key),
        }
    }

    fn pad_into(&self, nonce: u128, data: &mut [u8]) {
        // Block j of the pad is k · r^(j+1) in GF(2^128): consecutive
        // powers of r scaled by the key — the powering δ-biased generator.
        let mut power = nonce;
        for chunk in data.chunks_mut(16) {
            let block = gf128_mul(self.key, power).to_be_bytes();
            for (b, p) in chunk.iter_mut().zip(block.iter()) {
                *b ^= p;
            }
            power = gf128_mul(power, nonce);
        }
    }

    /// Encrypts a message with a freshly drawn public nonce.
    pub fn encrypt<R: CryptoRng + ?Sized>(
        &self,
        rng: &mut R,
        plaintext: &[u8],
    ) -> EntropicCiphertext {
        let mut nonce = [0u8; 16];
        // The nonce must be nonzero (r = 0 gives a zero pad).
        loop {
            rng.fill_bytes(&mut nonce);
            if nonce.iter().any(|&b| b != 0) {
                break;
            }
        }
        let mut body = plaintext.to_vec();
        self.pad_into(u128::from_be_bytes(nonce), &mut body);
        EntropicCiphertext { nonce, body }
    }

    /// Decrypts a ciphertext.
    pub fn decrypt(&self, ct: &EntropicCiphertext) -> Vec<u8> {
        let mut out = ct.body.clone();
        self.pad_into(u128::from_be_bytes(ct.nonce), &mut out);
        out
    }

    /// Storage expansion factor for a message of `len` bytes.
    pub fn expansion(len: usize) -> f64 {
        if len == 0 {
            return 1.0;
        }
        (len + Self::OVERHEAD) as f64 / len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::ChaChaDrbg;

    #[test]
    fn gf128_identity_and_zero() {
        let one = 1u128 << 127; // x^0 in our bit convention
        assert_eq!(gf128_mul(one, 0xDEADBEEF), 0xDEADBEEF);
        assert_eq!(gf128_mul(0, 0xDEADBEEF), 0);
    }

    #[test]
    fn gf128_commutative_samples() {
        let vals = [1u128 << 127, 0x1234_5678, u128::MAX, 0x8000_0000_0000_0000];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
            }
        }
    }

    #[test]
    fn gf128_distributive_samples() {
        let vals = [3u128, 0xFFFF_0000, 1 << 100, 0xABCD << 64];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    assert_eq!(gf128_mul(a, b ^ c), gf128_mul(a, b) ^ gf128_mul(a, c));
                }
            }
        }
    }

    #[test]
    fn roundtrip_various_lengths() {
        let cipher = EntropicCipher::new([0x42u8; 16]);
        let mut rng = ChaChaDrbg::from_u64_seed(7);
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            let ct = cipher.encrypt(&mut rng, &pt);
            assert_eq!(cipher.decrypt(&ct), pt, "len {len}");
        }
    }

    #[test]
    fn different_nonces_different_ciphertexts() {
        let cipher = EntropicCipher::new([1u8; 16]);
        let mut rng = ChaChaDrbg::from_u64_seed(9);
        let c1 = cipher.encrypt(&mut rng, b"same message body!!");
        let c2 = cipher.encrypt(&mut rng, b"same message body!!");
        assert_ne!(c1.nonce, c2.nonce);
        assert_ne!(c1.body, c2.body);
    }

    #[test]
    fn wrong_key_garbles() {
        let a = EntropicCipher::new([1u8; 16]);
        let b = EntropicCipher::new([2u8; 16]);
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let ct = a.encrypt(&mut rng, b"sixteen byte msg");
        assert_ne!(b.decrypt(&ct), b"sixteen byte msg");
    }

    #[test]
    fn overhead_accounting() {
        assert!((EntropicCipher::expansion(16) - 2.0).abs() < 1e-9);
        assert!((EntropicCipher::expansion(1 << 20) - 1.0) < 0.001);
        assert_eq!(EntropicCipher::expansion(0), 1.0);
    }

    #[test]
    fn pad_blocks_are_distinct() {
        // Consecutive pad blocks k·r, k·r², ... must differ (r != 0, 1).
        let cipher = EntropicCipher::new([9u8; 16]);
        let mut zeroes = vec![0u8; 64];
        cipher.pad_into(0x0123_4567_89AB_CDEF_0011_2233_4455_6677, &mut zeroes);
        let blocks: Vec<&[u8]> = zeroes.chunks(16).collect();
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                assert_ne!(blocks[i], blocks[j]);
            }
        }
    }
}

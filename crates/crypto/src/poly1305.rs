//! The Poly1305 one-time authenticator (RFC 8439).

/// Computes the Poly1305 tag of `msg` under a 32-byte one-time key.
///
/// The first 16 key bytes form the clamped polynomial evaluation point `r`;
/// the last 16 form the additive mask `s`. Arithmetic is over the prime
/// 2^130 - 5 using 26-bit limbs.
///
/// # Examples
///
/// ```
/// use aeon_crypto::poly1305::poly1305;
///
/// let key = [0x42u8; 32];
/// let t1 = poly1305(&key, b"msg");
/// let t2 = poly1305(&key, b"msg");
/// assert_eq!(t1, t2);
/// ```
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; 16] {
    let mut mac = Poly1305::new(key);
    mac.update(msg);
    mac.finalize()
}

/// Incremental Poly1305 state.
#[derive(Debug, Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates an authenticator from a 32-byte one-time key.
    pub fn new(key: &[u8; 32]) -> Self {
        // Clamp r per RFC 8439 and split into 26-bit limbs.
        let t0 = u32::from_le_bytes(key[0..4].try_into().expect("4"));
        let t1 = u32::from_le_bytes(key[4..8].try_into().expect("4"));
        let t2 = u32::from_le_bytes(key[8..12].try_into().expect("4"));
        let t3 = u32::from_le_bytes(key[12..16].try_into().expect("4"));
        let r = [
            t0 & 0x3ffffff,
            ((t0 >> 26) | (t1 << 6)) & 0x3ffff03,
            ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x3f03fff,
            (t3 >> 8) & 0x00fffff,
        ];
        let pad = [
            u32::from_le_bytes(key[16..20].try_into().expect("4")),
            u32::from_le_bytes(key[20..24].try_into().expect("4")),
            u32::from_le_bytes(key[24..28].try_into().expect("4")),
            u32::from_le_bytes(key[28..32].try_into().expect("4")),
        ];
        Poly1305 {
            r,
            h: [0; 5],
            pad,
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, false);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, false);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zero-pad.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, true);
        }
        // Full carry propagation.
        let mut h = self.h;
        let mut carry;
        carry = h[1] >> 26;
        h[1] &= 0x3ffffff;
        h[2] += carry;
        carry = h[2] >> 26;
        h[2] &= 0x3ffffff;
        h[3] += carry;
        carry = h[3] >> 26;
        h[3] &= 0x3ffffff;
        h[4] += carry;
        carry = h[4] >> 26;
        h[4] &= 0x3ffffff;
        h[0] += carry * 5;
        carry = h[0] >> 26;
        h[0] &= 0x3ffffff;
        h[1] += carry;

        // Compute g = h + 5 - 2^130 and select it if there was no borrow
        // (i.e., h >= p). The top limb keeps its carry bit for the test.
        let mut g = [0u32; 5];
        let mut c = 5u32;
        for i in 0..4 {
            g[i] = h[i].wrapping_add(c);
            c = g[i] >> 26;
            g[i] &= 0x3ffffff;
        }
        let g4 = h[4].wrapping_add(c).wrapping_sub(1 << 26);
        let use_g = (g4 >> 31) == 0; // no borrow means h >= p
        let sel = if use_g {
            [g[0], g[1], g[2], g[3], g4 & 0x3ffffff]
        } else {
            h
        };

        // Serialize to 128 bits and add s.
        let h0 = sel[0] | (sel[1] << 26);
        let h1 = (sel[1] >> 6) | (sel[2] << 20);
        let h2 = (sel[2] >> 12) | (sel[3] << 14);
        let h3 = (sel[3] >> 18) | (sel[4] << 8);

        let mut acc = (h0 as u64) + (self.pad[0] as u64);
        let f0 = acc as u32;
        acc = (h1 as u64) + (self.pad[1] as u64) + (acc >> 32);
        let f1 = acc as u32;
        acc = (h2 as u64) + (self.pad[2] as u64) + (acc >> 32);
        let f2 = acc as u32;
        acc = (h3 as u64) + (self.pad[3] as u64) + (acc >> 32);
        let f3 = acc as u32;

        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&f0.to_le_bytes());
        out[4..8].copy_from_slice(&f1.to_le_bytes());
        out[8..12].copy_from_slice(&f2.to_le_bytes());
        out[12..16].copy_from_slice(&f3.to_le_bytes());
        out
    }

    fn process_block(&mut self, block: &[u8; 16], partial: bool) {
        let hibit: u32 = if partial { 0 } else { 1 << 24 };
        let t0 = u32::from_le_bytes(block[0..4].try_into().expect("4"));
        let t1 = u32::from_le_bytes(block[4..8].try_into().expect("4"));
        let t2 = u32::from_le_bytes(block[8..12].try_into().expect("4"));
        let t3 = u32::from_le_bytes(block[12..16].try_into().expect("4"));

        self.h[0] += t0 & 0x3ffffff;
        self.h[1] += ((t0 >> 26) | (t1 << 6)) & 0x3ffffff;
        self.h[2] += ((t1 >> 20) | (t2 << 12)) & 0x3ffffff;
        self.h[3] += ((t2 >> 14) | (t3 << 18)) & 0x3ffffff;
        self.h[4] += (t3 >> 8) | hibit;

        // h *= r mod 2^130 - 5 (schoolbook with 5x folding).
        let [r0, r1, r2, r3, r4] = self.r.map(|v| v as u64);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;
        let [h0, h1, h2, h3, h4] = self.h.map(|v| v as u64);

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        let mut carry;
        let mut d = [d0, d1, d2, d3, d4];
        carry = d[0] >> 26;
        d[0] &= 0x3ffffff;
        d[1] += carry;
        carry = d[1] >> 26;
        d[1] &= 0x3ffffff;
        d[2] += carry;
        carry = d[2] >> 26;
        d[2] &= 0x3ffffff;
        d[3] += carry;
        carry = d[3] >> 26;
        d[3] &= 0x3ffffff;
        d[4] += carry;
        carry = d[4] >> 26;
        d[4] &= 0x3ffffff;
        d[0] += carry * 5;
        carry = d[0] >> 26;
        d[0] &= 0x3ffffff;
        d[1] += carry;

        self.h = [
            d[0] as u32,
            d[1] as u32,
            d[2] as u32,
            d[3] as u32,
            d[4] as u32,
        ];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha2::to_hex;

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&[
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8,
        ]);
        key[16..].copy_from_slice(&[
            0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf, 0x41, 0x49,
            0xf5, 0x1b,
        ]);
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(to_hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn empty_message() {
        // With r clamped and no blocks, tag == s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[7u8; 16]);
        assert_eq!(poly1305(&key, b""), [7u8; 16]);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x5Au8; 32];
        let msg: Vec<u8> = (0..100u8).collect();
        for split in [0usize, 1, 15, 16, 17, 50, 100] {
            let mut mac = Poly1305::new(&key);
            mac.update(&msg[..split]);
            mac.update(&msg[split..]);
            assert_eq!(mac.finalize(), poly1305(&key, &msg), "split {split}");
        }
    }

    #[test]
    fn message_sensitivity() {
        let key = [0x11u8; 32];
        let t1 = poly1305(&key, b"message one");
        let t2 = poly1305(&key, b"message two");
        assert_ne!(t1, t2);
    }
}

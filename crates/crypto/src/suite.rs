//! Cipher-suite registry and the simulated cryptanalytic timeline.
//!
//! The paper's core threat is *cryptographic obsolescence*: any
//! computationally secure scheme may be broken within an archive's
//! lifetime. To let the rest of the stack reason about that, every cipher
//! is named by a [`SuiteId`], and a [`BreakSchedule`] records the simulated
//! year at which each suite falls to cryptanalysis. Adversary simulations
//! consult the schedule; maintenance schedulers react to it by triggering
//! re-encryption or re-wrapping campaigns.

use crate::aead::{Aead, Aes256CtrHmac, AuthError, ChaCha20Poly1305};
use std::collections::BTreeMap;
use std::fmt;

/// A coarse confidentiality classification used across the workspace
/// (channels, encodings, whole-system evaluation — the rows of the
/// paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SecurityLevel {
    /// No confidentiality at all (plaintext, replication, erasure coding).
    None,
    /// Secure only against computationally bounded adversaries; falls to
    /// future cryptanalysis and harvest-now-decrypt-later.
    Computational,
    /// Information-theoretic for high-entropy messages only (entropically
    /// secure encryption).
    EntropicIts,
    /// Unconditional information-theoretic security.
    InformationTheoretic,
}

impl core::fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            SecurityLevel::None => "None",
            SecurityLevel::Computational => "Computational",
            SecurityLevel::EntropicIts => "Entropic-ITS",
            SecurityLevel::InformationTheoretic => "ITS",
        };
        f.write_str(s)
    }
}

/// Identifies an encryption suite known to the archive stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SuiteId {
    /// AES-256 in CTR mode with HMAC-SHA-256 (encrypt-then-MAC).
    Aes256CtrHmac,
    /// ChaCha20-Poly1305 (RFC 8439).
    ChaCha20Poly1305,
    /// One-time pad (information-theoretically secure; never breakable).
    OneTimePad,
    /// Entropically secure encryption (information-theoretic for
    /// high-entropy messages).
    Entropic,
}

impl SuiteId {
    /// All registered computational suites (excludes the OTP).
    pub const COMPUTATIONAL: [SuiteId; 2] = [SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305];

    /// Returns `true` if the suite's security is information-theoretic
    /// (no cryptanalytic advance can break it).
    pub fn is_information_theoretic(self) -> bool {
        matches!(self, SuiteId::OneTimePad | SuiteId::Entropic)
    }

    /// Stable wire identifier used in headers and manifests.
    pub fn wire_id(self) -> u8 {
        match self {
            SuiteId::Aes256CtrHmac => 1,
            SuiteId::ChaCha20Poly1305 => 2,
            SuiteId::OneTimePad => 3,
            SuiteId::Entropic => 4,
        }
    }

    /// Parses a wire identifier.
    pub fn from_wire_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(SuiteId::Aes256CtrHmac),
            2 => Some(SuiteId::ChaCha20Poly1305),
            3 => Some(SuiteId::OneTimePad),
            4 => Some(SuiteId::Entropic),
            _ => None,
        }
    }
}

impl fmt::Display for SuiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SuiteId::Aes256CtrHmac => "AES-256-CTR-HMAC",
            SuiteId::ChaCha20Poly1305 => "ChaCha20-Poly1305",
            SuiteId::OneTimePad => "OTP",
            SuiteId::Entropic => "Entropic",
        };
        f.write_str(name)
    }
}

/// A simulated year on the archival timeline (e.g. 2026).
pub type SimYear = u32;

/// Maps cipher suites to the simulated year cryptanalysis breaks them.
///
/// A suite absent from the schedule is never broken within the simulation
/// horizon. Information-theoretic suites ignore the schedule entirely.
///
/// # Examples
///
/// ```
/// use aeon_crypto::{BreakSchedule, SuiteId};
///
/// let mut schedule = BreakSchedule::new();
/// schedule.set_break(SuiteId::Aes256CtrHmac, 2045);
/// assert!(!schedule.is_broken(SuiteId::Aes256CtrHmac, 2044));
/// assert!(schedule.is_broken(SuiteId::Aes256CtrHmac, 2045));
/// assert!(!schedule.is_broken(SuiteId::OneTimePad, 9999));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BreakSchedule {
    breaks: BTreeMap<SuiteId, SimYear>,
}

impl BreakSchedule {
    /// Creates an empty schedule (nothing ever breaks).
    pub fn new() -> Self {
        Self::default()
    }

    /// A pessimistic default used in experiments: AES falls in 2045
    /// (quantum-assisted cryptanalysis), ChaCha in 2060.
    pub fn pessimistic() -> Self {
        let mut s = Self::new();
        s.set_break(SuiteId::Aes256CtrHmac, 2045);
        s.set_break(SuiteId::ChaCha20Poly1305, 2060);
        s
    }

    /// Schedules `suite` to be broken at `year`.
    pub fn set_break(&mut self, suite: SuiteId, year: SimYear) {
        self.breaks.insert(suite, year);
    }

    /// Returns the break year, if scheduled.
    pub fn break_year(&self, suite: SuiteId) -> Option<SimYear> {
        if suite.is_information_theoretic() {
            return None;
        }
        self.breaks.get(&suite).copied()
    }

    /// Returns `true` if `suite` is broken at (or before) `year`.
    pub fn is_broken(&self, suite: SuiteId, year: SimYear) -> bool {
        match self.break_year(suite) {
            Some(by) => year >= by,
            None => false,
        }
    }

    /// Returns the suites broken at `year` among the given set.
    pub fn broken_subset(&self, suites: &[SuiteId], year: SimYear) -> Vec<SuiteId> {
        suites
            .iter()
            .copied()
            .filter(|&s| self.is_broken(s, year))
            .collect()
    }
}

/// An instantiated AEAD suite (enum dispatch keeps the set closed and
/// serializable).
#[derive(Debug, Clone)]
pub enum SuiteCipher {
    /// AES-256-CTR + HMAC.
    Aes(Aes256CtrHmac),
    /// ChaCha20-Poly1305.
    ChaCha(ChaCha20Poly1305),
}

impl SuiteCipher {
    /// Seals plaintext under this suite.
    pub fn seal(&self, nonce: &[u8], aad: &[u8], pt: &[u8]) -> Vec<u8> {
        match self {
            SuiteCipher::Aes(a) => a.seal(nonce, aad, pt),
            SuiteCipher::ChaCha(c) => c.seal(nonce, aad, pt),
        }
    }

    /// Opens ciphertext under this suite.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] on authentication failure.
    pub fn open(&self, nonce: &[u8], aad: &[u8], ct: &[u8]) -> Result<Vec<u8>, AuthError> {
        match self {
            SuiteCipher::Aes(a) => a.open(nonce, aad, ct),
            SuiteCipher::ChaCha(c) => c.open(nonce, aad, ct),
        }
    }

    /// The suite's identifier.
    pub fn id(&self) -> SuiteId {
        match self {
            SuiteCipher::Aes(_) => SuiteId::Aes256CtrHmac,
            SuiteCipher::ChaCha(_) => SuiteId::ChaCha20Poly1305,
        }
    }
}

/// Instantiates AEAD suites from 32-byte keys by suite id.
#[derive(Debug, Clone, Default)]
pub struct SuiteRegistry;

impl SuiteRegistry {
    /// Creates the registry.
    pub fn new() -> Self {
        SuiteRegistry
    }

    /// Instantiates the AEAD for `id` with `key`.
    ///
    /// Returns `None` for suites that are not plain AEADs (OTP, entropic),
    /// which have their own key-material lifecycles.
    pub fn instantiate(&self, id: SuiteId, key: &[u8; 32]) -> Option<SuiteCipher> {
        match id {
            SuiteId::Aes256CtrHmac => Some(SuiteCipher::Aes(Aes256CtrHmac::new(key))),
            SuiteId::ChaCha20Poly1305 => Some(SuiteCipher::ChaCha(ChaCha20Poly1305::new(key))),
            SuiteId::OneTimePad | SuiteId::Entropic => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_id_roundtrip() {
        for id in [
            SuiteId::Aes256CtrHmac,
            SuiteId::ChaCha20Poly1305,
            SuiteId::OneTimePad,
            SuiteId::Entropic,
        ] {
            assert_eq!(SuiteId::from_wire_id(id.wire_id()), Some(id));
        }
        assert_eq!(SuiteId::from_wire_id(0), None);
        assert_eq!(SuiteId::from_wire_id(200), None);
    }

    #[test]
    fn schedule_semantics() {
        let mut s = BreakSchedule::new();
        assert!(!s.is_broken(SuiteId::Aes256CtrHmac, 3000));
        s.set_break(SuiteId::Aes256CtrHmac, 2045);
        assert!(!s.is_broken(SuiteId::Aes256CtrHmac, 2044));
        assert!(s.is_broken(SuiteId::Aes256CtrHmac, 2045));
        assert!(s.is_broken(SuiteId::Aes256CtrHmac, 2100));
    }

    #[test]
    fn its_suites_never_break() {
        let mut s = BreakSchedule::new();
        s.set_break(SuiteId::OneTimePad, 2000); // ignored
        assert!(!s.is_broken(SuiteId::OneTimePad, 9999));
        assert_eq!(s.break_year(SuiteId::OneTimePad), None);
    }

    #[test]
    fn broken_subset() {
        let s = BreakSchedule::pessimistic();
        let all = [
            SuiteId::Aes256CtrHmac,
            SuiteId::ChaCha20Poly1305,
            SuiteId::OneTimePad,
        ];
        assert_eq!(s.broken_subset(&all, 2040), vec![]);
        assert_eq!(s.broken_subset(&all, 2050), vec![SuiteId::Aes256CtrHmac]);
        assert_eq!(
            s.broken_subset(&all, 2070),
            vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305]
        );
    }

    #[test]
    fn registry_instantiates_and_roundtrips() {
        let reg = SuiteRegistry::new();
        for id in SuiteId::COMPUTATIONAL {
            let cipher = reg.instantiate(id, &[7u8; 32]).unwrap();
            assert_eq!(cipher.id(), id);
            let sealed = cipher.seal(&[0u8; 12], b"a", b"data");
            assert_eq!(cipher.open(&[0u8; 12], b"a", &sealed).unwrap(), b"data");
        }
        assert!(reg.instantiate(SuiteId::OneTimePad, &[0u8; 32]).is_none());
    }
}

//! The one-time pad: information-theoretically secure encryption.
//!
//! The pad is the ε = 0 point of the paper's Definition 2.1: without the
//! key, a ciphertext is statistically independent of the plaintext, so no
//! amount of future computation helps. The price is a key exactly as long
//! as the message that must never be reused — the [`OneTimePad`] type makes
//! key consumption explicit and refuses reuse.

/// Errors from one-time-pad operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OtpError {
    /// The pad has fewer unused key bytes than the message requires.
    KeyExhausted {
        /// Bytes remaining in the pad.
        remaining: usize,
        /// Bytes the operation needed.
        needed: usize,
    },
    /// Ciphertext and offset metadata are inconsistent with the pad.
    InvalidOffset,
}

impl core::fmt::Display for OtpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OtpError::KeyExhausted { remaining, needed } => write!(
                f,
                "one-time pad exhausted: {needed} bytes needed, {remaining} remaining"
            ),
            OtpError::InvalidOffset => write!(f, "invalid pad offset"),
        }
    }
}

impl std::error::Error for OtpError {}

/// A one-time pad with strict single-use key accounting.
///
/// # Examples
///
/// ```
/// use aeon_crypto::otp::OneTimePad;
///
/// let mut pad = OneTimePad::new(vec![0x5A; 32]);
/// let (ct, offset) = pad.encrypt(b"top secret")?;
/// let pt = pad.decrypt(&ct, offset)?;
/// assert_eq!(pt, b"top secret");
/// assert_eq!(pad.remaining(), 32 - 10);
/// # Ok::<(), aeon_crypto::otp::OtpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OneTimePad {
    key: Vec<u8>,
    consumed: usize,
}

impl OneTimePad {
    /// Creates a pad from key material (must be uniformly random for
    /// security; callers typically fill it from a
    /// [`CryptoRng`](crate::CryptoRng) or a QKD link).
    pub fn new(key: Vec<u8>) -> Self {
        OneTimePad { key, consumed: 0 }
    }

    /// Bytes of unused key material remaining.
    pub fn remaining(&self) -> usize {
        self.key.len() - self.consumed
    }

    /// Total pad length.
    pub fn len(&self) -> usize {
        self.key.len()
    }

    /// Returns `true` if the pad was created empty.
    pub fn is_empty(&self) -> bool {
        self.key.is_empty()
    }

    /// Encrypts a message, consuming key bytes. Returns the ciphertext and
    /// the pad offset needed for decryption.
    ///
    /// # Errors
    ///
    /// Returns [`OtpError::KeyExhausted`] if insufficient key remains.
    pub fn encrypt(&mut self, plaintext: &[u8]) -> Result<(Vec<u8>, usize), OtpError> {
        if self.remaining() < plaintext.len() {
            return Err(OtpError::KeyExhausted {
                remaining: self.remaining(),
                needed: plaintext.len(),
            });
        }
        let offset = self.consumed;
        let ct = plaintext
            .iter()
            .zip(&self.key[offset..offset + plaintext.len()])
            .map(|(p, k)| p ^ k)
            .collect();
        self.consumed += plaintext.len();
        Ok((ct, offset))
    }

    /// Decrypts a ciphertext produced at `offset`. Decryption does not
    /// consume key (the bytes were consumed at encryption time).
    ///
    /// # Errors
    ///
    /// Returns [`OtpError::InvalidOffset`] if `offset + len` exceeds the pad.
    pub fn decrypt(&self, ciphertext: &[u8], offset: usize) -> Result<Vec<u8>, OtpError> {
        let end = offset
            .checked_add(ciphertext.len())
            .ok_or(OtpError::InvalidOffset)?;
        if end > self.key.len() {
            return Err(OtpError::InvalidOffset);
        }
        Ok(ciphertext
            .iter()
            .zip(&self.key[offset..end])
            .map(|(c, k)| c ^ k)
            .collect())
    }
}

/// Stateless XOR helper for protocol code that manages its own pads.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_into(out: &mut [u8], key: &[u8]) {
    assert_eq!(out.len(), key.len(), "xor length mismatch");
    for (o, k) in out.iter_mut().zip(key) {
        *o ^= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut pad = OneTimePad::new((0..=255u8).collect());
        let (ct, off) = pad.encrypt(b"hello").unwrap();
        assert_ne!(&ct, b"hello");
        assert_eq!(pad.decrypt(&ct, off).unwrap(), b"hello");
    }

    #[test]
    fn sequential_messages_use_disjoint_key() {
        let mut pad = OneTimePad::new(vec![0xFF; 10]);
        let (c1, o1) = pad.encrypt(b"aaa").unwrap();
        let (c2, o2) = pad.encrypt(b"aaa").unwrap();
        assert_eq!(o1, 0);
        assert_eq!(o2, 3);
        // Same plaintext, same all-0xFF key region -> same ct here, but
        // offsets differ, proving disjoint consumption.
        assert_eq!(c1, c2);
        assert_eq!(pad.remaining(), 4);
    }

    #[test]
    fn exhaustion_detected() {
        let mut pad = OneTimePad::new(vec![0; 4]);
        assert!(pad.encrypt(b"12345").is_err());
        pad.encrypt(b"1234").unwrap();
        let err = pad.encrypt(b"x").unwrap_err();
        assert_eq!(
            err,
            OtpError::KeyExhausted {
                remaining: 0,
                needed: 1
            }
        );
    }

    #[test]
    fn invalid_offset_rejected() {
        let pad = OneTimePad::new(vec![0; 4]);
        assert_eq!(pad.decrypt(&[1, 2, 3], 2), Err(OtpError::InvalidOffset));
        assert_eq!(pad.decrypt(&[1], usize::MAX), Err(OtpError::InvalidOffset));
    }

    #[test]
    fn empty_message_ok() {
        let mut pad = OneTimePad::new(vec![]);
        let (ct, off) = pad.encrypt(b"").unwrap();
        assert!(ct.is_empty());
        assert_eq!(pad.decrypt(&ct, off).unwrap(), b"");
    }

    #[test]
    fn perfect_secrecy_shape() {
        // For a fixed ciphertext, every plaintext is reachable by some key:
        // enumerate over a 1-byte message space.
        let ct = 0xA7u8;
        let mut reachable = [false; 256];
        for key in 0..=255u8 {
            reachable[(ct ^ key) as usize] = true;
        }
        assert!(reachable.iter().all(|&r| r));
    }
}

//! Authenticated encryption with associated data.
//!
//! Two independent AEAD constructions back the cipher-agility story: a
//! stream-cipher-based suite (ChaCha20-Poly1305, RFC 8439) and a
//! block-cipher-based suite (AES-256-CTR with HMAC-SHA-256 in
//! encrypt-then-MAC composition). Cascading both hedges against the
//! cryptanalysis of either family — the ArchiveSafeLT approach.

use crate::aes::Aes;
use crate::chacha::ChaCha20;
use crate::hmac::{hmac_sha256, verify_tag, HmacSha256};
use crate::poly1305::Poly1305;

/// Error returned when AEAD opening fails authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl core::fmt::Display for AuthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AEAD authentication failed")
    }
}

impl std::error::Error for AuthError {}

/// An authenticated encryption scheme with associated data.
///
/// `seal` returns `ciphertext || tag`; `open` verifies and strips the tag.
/// Implementations are deterministic given (key, nonce, aad, plaintext) —
/// nonce uniqueness is the caller's responsibility.
pub trait Aead: core::fmt::Debug + Send + Sync {
    /// Key length in bytes.
    const KEY_LEN: usize;
    /// Nonce length in bytes.
    const NONCE_LEN: usize;
    /// Authentication tag length in bytes.
    const TAG_LEN: usize;

    /// Encrypts and authenticates `plaintext`, binding `aad`.
    fn seal(&self, nonce: &[u8], aad: &[u8], plaintext: &[u8]) -> Vec<u8>;

    /// Verifies and decrypts `ciphertext` (which includes the trailing tag).
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if the tag does not verify.
    fn open(&self, nonce: &[u8], aad: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, AuthError>;
}

/// ChaCha20-Poly1305 AEAD (RFC 8439).
#[derive(Debug, Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; 32],
}

impl ChaCha20Poly1305 {
    /// Creates an instance from a 256-bit key.
    pub fn new(key: &[u8; 32]) -> Self {
        ChaCha20Poly1305 { key: *key }
    }

    fn poly_key(&self, nonce: &[u8; 12]) -> [u8; 32] {
        let block = ChaCha20::new(&self.key, nonce).block(0);
        let mut pk = [0u8; 32];
        pk.copy_from_slice(&block[..32]);
        pk
    }

    fn compute_tag(poly_key: &[u8; 32], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let mut mac = Poly1305::new(poly_key);
        mac.update(aad);
        if !aad.len().is_multiple_of(16) {
            mac.update(&vec![0u8; 16 - aad.len() % 16]);
        }
        mac.update(ct);
        if !ct.len().is_multiple_of(16) {
            mac.update(&vec![0u8; 16 - ct.len() % 16]);
        }
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ct.len() as u64).to_le_bytes());
        mac.finalize()
    }
}

impl Aead for ChaCha20Poly1305 {
    const KEY_LEN: usize = 32;
    const NONCE_LEN: usize = 12;
    const TAG_LEN: usize = 16;

    fn seal(&self, nonce: &[u8], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let nonce: &[u8; 12] = nonce.try_into().expect("nonce must be 12 bytes");
        let mut out = plaintext.to_vec();
        ChaCha20::new(&self.key, nonce).apply_keystream(1, &mut out);
        let tag = Self::compute_tag(&self.poly_key(nonce), aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    fn open(&self, nonce: &[u8], aad: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, AuthError> {
        let nonce: &[u8; 12] = nonce.try_into().map_err(|_| AuthError)?;
        if ciphertext.len() < 16 {
            return Err(AuthError);
        }
        let (ct, tag) = ciphertext.split_at(ciphertext.len() - 16);
        let expect = Self::compute_tag(&self.poly_key(nonce), aad, ct);
        if !verify_tag(&expect, tag) {
            return Err(AuthError);
        }
        let mut out = ct.to_vec();
        ChaCha20::new(&self.key, nonce).apply_keystream(1, &mut out);
        Ok(out)
    }
}

/// AES-256-CTR with HMAC-SHA-256 (encrypt-then-MAC).
///
/// The 64-byte master key splits into an encryption half and a MAC half.
/// The MAC covers `nonce || aad_len || aad || ciphertext`, giving the same
/// binding properties as a standard AEAD.
#[derive(Debug, Clone)]
pub struct Aes256CtrHmac {
    enc_key: [u8; 32],
    mac_key: [u8; 32],
}

impl Aes256CtrHmac {
    /// Creates an instance from a 256-bit key, deriving independent
    /// encryption and MAC subkeys via HKDF.
    pub fn new(key: &[u8; 32]) -> Self {
        let okm = crate::hkdf::derive(b"aeon-aes-ctr-hmac", key, b"subkeys", 64);
        let mut enc_key = [0u8; 32];
        let mut mac_key = [0u8; 32];
        enc_key.copy_from_slice(&okm[..32]);
        mac_key.copy_from_slice(&okm[32..]);
        Aes256CtrHmac { enc_key, mac_key }
    }

    fn iv_from_nonce(nonce: &[u8]) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[..12].copy_from_slice(nonce);
        iv
    }

    fn compute_tag(&self, nonce: &[u8], aad: &[u8], ct: &[u8]) -> [u8; 32] {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(nonce);
        mac.update(&(aad.len() as u64).to_be_bytes());
        mac.update(aad);
        mac.update(ct);
        mac.finalize()
    }
}

impl Aead for Aes256CtrHmac {
    const KEY_LEN: usize = 32;
    const NONCE_LEN: usize = 12;
    const TAG_LEN: usize = 32;

    fn seal(&self, nonce: &[u8], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        assert_eq!(nonce.len(), 12, "nonce must be 12 bytes");
        let mut out = plaintext.to_vec();
        Aes::new_256(&self.enc_key).apply_ctr(&Self::iv_from_nonce(nonce), &mut out);
        let tag = self.compute_tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    fn open(&self, nonce: &[u8], aad: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, AuthError> {
        if nonce.len() != 12 || ciphertext.len() < 32 {
            return Err(AuthError);
        }
        let (ct, tag) = ciphertext.split_at(ciphertext.len() - 32);
        let expect = self.compute_tag(nonce, aad, ct);
        if !verify_tag(&expect, tag) {
            return Err(AuthError);
        }
        let mut out = ct.to_vec();
        Aes::new_256(&self.enc_key).apply_ctr(&Self::iv_from_nonce(nonce), &mut out);
        Ok(out)
    }
}

/// Convenience: derives a deterministic nonce from context bytes by
/// hashing. Safe when each (key, context) pair is unique.
pub fn derive_nonce(context: &[u8]) -> [u8; 12] {
    let d = hmac_sha256(b"aeon-nonce", context);
    let mut n = [0u8; 12];
    n.copy_from_slice(&d[..12]);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha2::to_hex;

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2.
        let key: [u8; 32] = core::array::from_fn(|i| 0x80 + i as u8);
        let nonce: [u8; 12] = [
            0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad: [u8; 12] = [
            0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
        ];
        let pt = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let sealed = ChaCha20Poly1305::new(&key).seal(&nonce, &aad, pt);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(to_hex(&ct[..16]), "d31a8d34648e60db7b86afbc53ef7ec2");
        assert_eq!(to_hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
    }

    fn roundtrip<A: Aead>(aead: &A) {
        let nonce = [9u8; 12];
        for len in [0usize, 1, 16, 17, 100, 1000] {
            let pt = vec![0x3Cu8; len];
            let sealed = aead.seal(&nonce, b"aad", &pt);
            let opened = aead.open(&nonce, b"aad", &sealed).unwrap();
            assert_eq!(opened, pt, "len {len}");
        }
    }

    #[test]
    fn chacha_roundtrip() {
        roundtrip(&ChaCha20Poly1305::new(&[1u8; 32]));
    }

    #[test]
    fn aes_roundtrip() {
        roundtrip(&Aes256CtrHmac::new(&[1u8; 32]));
    }

    fn tamper_detected<A: Aead>(aead: &A) {
        let nonce = [3u8; 12];
        let mut sealed = aead.seal(&nonce, b"aad", b"payload");
        // Flip a ciphertext bit.
        sealed[0] ^= 1;
        assert_eq!(aead.open(&nonce, b"aad", &sealed), Err(AuthError));
        sealed[0] ^= 1;
        // Flip a tag bit.
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(aead.open(&nonce, b"aad", &sealed), Err(AuthError));
        sealed[last] ^= 1;
        // Wrong AAD.
        assert_eq!(aead.open(&nonce, b"bad", &sealed), Err(AuthError));
        // Wrong nonce.
        assert_eq!(aead.open(&[4u8; 12], b"aad", &sealed), Err(AuthError));
        // Truncated.
        assert_eq!(aead.open(&nonce, b"aad", &sealed[..4]), Err(AuthError));
        // Intact still opens.
        assert!(aead.open(&nonce, b"aad", &sealed).is_ok());
    }

    #[test]
    fn chacha_tamper_detected() {
        tamper_detected(&ChaCha20Poly1305::new(&[2u8; 32]));
    }

    #[test]
    fn aes_tamper_detected() {
        tamper_detected(&Aes256CtrHmac::new(&[2u8; 32]));
    }

    #[test]
    fn different_keys_cannot_open() {
        let a = ChaCha20Poly1305::new(&[1u8; 32]);
        let b = ChaCha20Poly1305::new(&[2u8; 32]);
        let sealed = a.seal(&[0u8; 12], b"", b"msg");
        assert!(b.open(&[0u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn derive_nonce_deterministic() {
        assert_eq!(derive_nonce(b"ctx"), derive_nonce(b"ctx"));
        assert_ne!(derive_nonce(b"ctx1"), derive_nonce(b"ctx2"));
    }
}

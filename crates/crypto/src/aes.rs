//! AES-128/256 block cipher (FIPS 197) and CTR mode.

const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    acc
}

const fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 by square-and-multiply.
    let mut acc = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = gf_mul(acc, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    acc
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let inv = gf_inv(i as u8);
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let b = inv;
        sbox[i] =
            b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
        i += 1;
    }
    sbox
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const SBOX: [u8; 256] = build_sbox();
const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];

/// An AES key schedule supporting 128- and 256-bit keys.
///
/// Only the operations needed by the archive stack are exposed: raw block
/// encryption/decryption (for test vectors) and CTR-mode streaming (the
/// mode used by [`Aes256CtrHmac`](crate::aead::Aes256CtrHmac)).
///
/// # Examples
///
/// ```
/// use aeon_crypto::aes::Aes;
///
/// let aes = Aes::new_256(&[0u8; 32]);
/// let mut block = [0u8; 16];
/// let ct = aes.encrypt_block(&block);
/// block = aes.decrypt_block(&ct);
/// assert_eq!(block, [0u8; 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
}

/// Convenience alias constructor set for AES-256.
pub type Aes256 = Aes;

impl Aes {
    /// Creates an AES-128 instance.
    pub fn new_128(key: &[u8; 16]) -> Self {
        Aes {
            round_keys: expand_key(key, 4, 10),
        }
    }

    /// Creates an AES-256 instance.
    pub fn new_256(key: &[u8; 32]) -> Self {
        Aes {
            round_keys: expand_key(key, 8, 14),
        }
    }

    /// Number of rounds (10 for AES-128, 14 for AES-256).
    pub fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let rounds = self.rounds();
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for r in 1..rounds {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[r]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[rounds]);
        state
    }

    /// Decrypts a single 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let rounds = self.rounds();
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[rounds]);
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        for r in (1..rounds).rev() {
            add_round_key(&mut state, &self.round_keys[r]);
            inv_mix_columns(&mut state);
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
        }
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }

    /// Applies CTR-mode keystream to `data` in place, starting from the
    /// given 16-byte initial counter block (big-endian increment of the
    /// low 32 bits).
    ///
    /// Encryption and decryption are the same operation.
    pub fn apply_ctr(&self, iv: &[u8; 16], data: &mut [u8]) {
        let mut counter = *iv;
        for chunk in data.chunks_mut(16) {
            let ks = self.encrypt_block(&counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            // Increment low 32 bits big-endian.
            let mut c = u32::from_be_bytes(counter[12..16].try_into().expect("4"));
            c = c.wrapping_add(1);
            counter[12..16].copy_from_slice(&c.to_be_bytes());
        }
    }
}

fn expand_key(key: &[u8], nk: usize, rounds: usize) -> Vec<[u8; 16]> {
    let nw = 4 * (rounds + 1);
    let mut w = vec![[0u8; 4]; nw];
    for (i, word) in w.iter_mut().take(nk).enumerate() {
        word.copy_from_slice(&key[4 * i..4 * i + 4]);
    }
    for i in nk..nw {
        let mut temp = w[i - 1];
        if i % nk == 0 {
            temp.rotate_left(1);
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / nk - 1];
        } else if nk > 6 && i % nk == 4 {
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
        }
        for j in 0..4 {
            w[i][j] = w[i - nk][j] ^ temp[j];
        }
    }
    w.chunks_exact(4)
        .map(|c| {
            let mut rk = [0u8; 16];
            for (i, word) in c.iter().enumerate() {
                rk[4 * i..4 * i + 4].copy_from_slice(word);
            }
            rk
        })
        .collect()
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha2::to_hex;

    #[test]
    fn sbox_known_entries() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS 197 Appendix B.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let aes = Aes::new_128(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(to_hex(&ct), "3925841d02dc09fbdc118597196a0b32");
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS 197 Appendix C.3.
        let key: [u8; 32] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b,
            0x1c, 0x1d, 0x1e, 0x1f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes::new_256(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(to_hex(&ct), "8ea2b7ca516745bfeafc49904b496089");
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn nist_sp800_38a_ctr_aes256() {
        // NIST SP 800-38A F.5.5 CTR-AES256.Encrypt, first block.
        let key: [u8; 32] = [
            0x60, 0x3d, 0xeb, 0x10, 0x15, 0xca, 0x71, 0xbe, 0x2b, 0x73, 0xae, 0xf0, 0x85, 0x7d,
            0x77, 0x81, 0x1f, 0x35, 0x2c, 0x07, 0x3b, 0x61, 0x08, 0xd7, 0x2d, 0x98, 0x10, 0xa3,
            0x09, 0x14, 0xdf, 0xf4,
        ];
        let iv: [u8; 16] = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd,
            0xfe, 0xff,
        ];
        let mut data: Vec<u8> = vec![
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        Aes::new_256(&key).apply_ctr(&iv, &mut data);
        assert_eq!(to_hex(&data), "601ec313775789a5b7a7f504bbf3d228");
    }

    #[test]
    fn ctr_roundtrip_partial_blocks() {
        let aes = Aes::new_256(&[0x42u8; 32]);
        let iv = [0x24u8; 16];
        for len in [0usize, 1, 15, 16, 17, 100] {
            let original = vec![0x77u8; len];
            let mut data = original.clone();
            aes.apply_ctr(&iv, &mut data);
            aes.apply_ctr(&iv, &mut data);
            assert_eq!(data, original, "len {len}");
        }
    }

    #[test]
    fn all_blocks_distinct_under_ctr() {
        let aes = Aes::new_128(&[1u8; 16]);
        let iv = [0u8; 16];
        let mut data = vec![0u8; 64];
        aes.apply_ctr(&iv, &mut data);
        let blocks: Vec<&[u8]> = data.chunks(16).collect();
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                assert_ne!(blocks[i], blocks[j]);
            }
        }
    }

    #[test]
    fn shift_rows_inverse() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_inverse() {
        let mut s: [u8; 16] = core::array::from_fn(|i| (i * 17) as u8);
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }
}

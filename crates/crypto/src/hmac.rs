//! HMAC (RFC 2104) over SHA-256 and SHA-512.

use crate::sha2::{Sha256, Sha512};

/// Computes HMAC-SHA-256 of `data` under `key`.
///
/// # Examples
///
/// ```
/// use aeon_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[..4], [0xf7, 0xbc, 0x83, 0xf4]);
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Computes HMAC-SHA-512 of `data` under `key`.
pub fn hmac_sha512(key: &[u8], data: &[u8]) -> [u8; 64] {
    const BLOCK: usize = 128;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = Sha512::digest(key);
        k[..64].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha512::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha512::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Incremental HMAC-SHA-256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        const BLOCK: usize = 64;
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = Sha256::digest(key);
            k[..32].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut inner = Sha256::new();
        let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(mut self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }
}

/// Constant-shape tag comparison (XOR-accumulate; avoids early exit).
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut acc = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        acc |= a ^ b;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha2::to_hex;

    #[test]
    fn rfc4231_case_1() {
        // Key = 20 bytes of 0x0b, data = "Hi There"
        let key = [0x0bu8; 20];
        assert_eq!(
            to_hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            to_hex(&hmac_sha512(&key, b"Hi There")),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_case_2_jefe() {
        assert_eq!(
            to_hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_long_key() {
        // 131-byte key of 0xaa forces key hashing.
        let key = [0xaau8; 131];
        assert_eq!(
            to_hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"incremental-key";
        let data = b"part one and part two and part three";
        let mut mac = HmacSha256::new(key);
        mac.update(&data[..10]);
        mac.update(&data[10..]);
        assert_eq!(mac.finalize(), hmac_sha256(key, data));
    }

    #[test]
    fn verify_tag_behaviour() {
        assert!(verify_tag(b"abcd", b"abcd"));
        assert!(!verify_tag(b"abcd", b"abce"));
        assert!(!verify_tag(b"abcd", b"abc"));
        assert!(verify_tag(b"", b""));
    }

    #[test]
    fn different_keys_different_tags() {
        let t1 = hmac_sha256(b"k1", b"data");
        let t2 = hmac_sha256(b"k2", b"data");
        assert_ne!(t1, t2);
    }
}

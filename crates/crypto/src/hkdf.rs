//! HKDF (RFC 5869) keyed off HMAC-SHA-256.
//!
//! Used throughout the workspace to derive independent per-layer keys for
//! cascade ciphers and per-object keys from archive master keys.

use crate::hmac::hmac_sha256;

/// HKDF-Extract: condenses input keying material into a pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: stretches a pseudorandom key into `len` output bytes bound
/// to `info`.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (the RFC 5869 limit).
pub fn expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF-Expand output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    for counter in 1..=255u8 {
        if out.len() >= len {
            break;
        }
        let mut input = Vec::with_capacity(t.len() + info.len() + 1);
        input.extend_from_slice(&t);
        input.extend_from_slice(info);
        input.push(counter);
        let block = hmac_sha256(prk, &input);
        t = block.to_vec();
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&block[..take]);
    }
    out
}

/// One-shot HKDF: extract-then-expand.
///
/// # Examples
///
/// ```
/// use aeon_crypto::hkdf::derive;
///
/// let k1 = derive(b"salt", b"master", b"layer-0", 32);
/// let k2 = derive(b"salt", b"master", b"layer-1", 32);
/// assert_ne!(k1, k2);
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = extract(salt, ikm);
    expand(&prk, info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha2::to_hex;

    #[test]
    fn rfc5869_test_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_test_case_3_empty_salt_info() {
        let ikm = [0x0bu8; 22];
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn length_edge_cases() {
        let prk = extract(b"s", b"ikm");
        assert!(expand(&prk, b"i", 0).is_empty());
        assert_eq!(expand(&prk, b"i", 1).len(), 1);
        assert_eq!(expand(&prk, b"i", 32).len(), 32);
        assert_eq!(expand(&prk, b"i", 33).len(), 33);
        assert_eq!(expand(&prk, b"i", 255 * 32).len(), 255 * 32);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn over_limit_panics() {
        let prk = extract(b"s", b"ikm");
        let _ = expand(&prk, b"i", 255 * 32 + 1);
    }

    #[test]
    fn info_separates_keys() {
        let a = derive(b"salt", b"ikm", b"a", 32);
        let b = derive(b"salt", b"ikm", b"b", 32);
        assert_ne!(a, b);
        // Prefix consistency: longer output starts with shorter output.
        let long = derive(b"salt", b"ikm", b"a", 64);
        assert_eq!(&long[..32], &a[..]);
    }
}

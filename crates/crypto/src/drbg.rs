//! Deterministic random bit generation.
//!
//! Every randomized protocol in the workspace (share generation, blinding,
//! refresh) draws from the [`CryptoRng`] trait so tests and simulations can
//! inject a seeded generator and replay runs bit-for-bit.

use crate::chacha::ChaCha20;

/// A source of cryptographic random bytes.
///
/// Implemented by [`ChaChaDrbg`]; simulation code may provide its own
/// deterministic implementations.
pub trait CryptoRng {
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Returns a fresh array of random bytes.
    ///
    /// Generic over `N`, so only callable on sized types; object-safe
    /// callers (`&mut dyn CryptoRng`) use the free [`random_array`]
    /// instead — both funnel through [`CryptoRng::fill_bytes`] and
    /// consume the identical byte stream.
    fn gen_array<const N: usize>(&mut self) -> [u8; N]
    where
        Self: Sized,
    {
        random_array(self)
    }

    /// Returns a uniform `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a uniform value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection sampling to remove modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Returns a fresh array of random bytes from any [`CryptoRng`],
/// including trait objects. Byte-stream-identical to
/// [`CryptoRng::gen_array`].
pub fn random_array<const N: usize, R: CryptoRng + ?Sized>(rng: &mut R) -> [u8; N] {
    let mut out = [0u8; N];
    rng.fill_bytes(&mut out);
    out
}

/// A ChaCha20-based deterministic random bit generator.
///
/// The generator runs ChaCha20 in counter mode over a zero plaintext and
/// reseeds its key from its own output every 2^32 blocks (never reached in
/// practice). Two instances with the same seed emit identical streams.
///
/// # Examples
///
/// ```
/// use aeon_crypto::{ChaChaDrbg, CryptoRng};
///
/// let mut a = ChaChaDrbg::from_seed([1u8; 32]);
/// let mut b = ChaChaDrbg::from_seed([1u8; 32]);
/// assert_eq!(a.gen_array::<16>(), b.gen_array::<16>());
/// ```
#[derive(Debug, Clone)]
pub struct ChaChaDrbg {
    cipher: ChaCha20,
    counter: u32,
    buf: [u8; 64],
    buf_pos: usize,
}

impl ChaChaDrbg {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaChaDrbg {
            cipher: ChaCha20::new(&seed, &[0u8; 12]),
            counter: 0,
            buf: [0u8; 64],
            buf_pos: 64,
        }
    }

    /// Creates a generator seeded from a u64 (convenience for simulations).
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        s[8..16].copy_from_slice(&seed.wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes());
        Self::from_seed(s)
    }

    /// Derives an independent child generator (forward-secure split).
    pub fn fork(&mut self) -> Self {
        let seed: [u8; 32] = self.gen_array();
        Self::from_seed(seed)
    }
}

impl CryptoRng for ChaChaDrbg {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0usize;
        while written < dest.len() {
            if self.buf_pos == 64 {
                self.buf = self.cipher.block(self.counter);
                self.counter = self
                    .counter
                    .checked_add(1)
                    .expect("DRBG exhausted 2^32 blocks; reseed required");
                self.buf_pos = 0;
            }
            let take = (64 - self.buf_pos).min(dest.len() - written);
            dest[written..written + take]
                .copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            written += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaChaDrbg::from_seed([7u8; 32]);
        let mut b = ChaChaDrbg::from_seed([7u8; 32]);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaDrbg::from_seed([1u8; 32]);
        let mut b = ChaChaDrbg::from_seed([2u8; 32]);
        assert_ne!(a.gen_array::<32>(), b.gen_array::<32>());
    }

    #[test]
    fn uneven_reads_match_even_reads() {
        let mut a = ChaChaDrbg::from_u64_seed(99);
        let mut b = ChaChaDrbg::from_u64_seed(99);
        let mut out_a = vec![0u8; 200];
        a.fill_bytes(&mut out_a);
        let mut out_b = vec![0u8; 200];
        let (first, rest) = out_b.split_at_mut(13);
        b.fill_bytes(first);
        let (second, rest2) = rest.split_at_mut(64);
        b.fill_bytes(second);
        b.fill_bytes(rest2);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = ChaChaDrbg::from_u64_seed(5);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..50 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = ChaChaDrbg::from_u64_seed(6);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = ChaChaDrbg::from_u64_seed(1);
        let mut child = parent.fork();
        let p = parent.gen_array::<32>();
        let c = child.gen_array::<32>();
        assert_ne!(p, c);
    }

    #[test]
    fn rough_uniformity() {
        // Mean byte value of 64 KiB of output should be near 127.5.
        let mut rng = ChaChaDrbg::from_u64_seed(42);
        let mut buf = vec![0u8; 65536];
        rng.fill_bytes(&mut buf);
        let mean: f64 = buf.iter().map(|&b| b as f64).sum::<f64>() / buf.len() as f64;
        assert!((mean - 127.5).abs() < 2.0, "mean {mean}");
    }
}

//! Property-based tests for the crypto substrate.

use aeon_crypto::aead::{Aead, Aes256CtrHmac, ChaCha20Poly1305};
use aeon_crypto::cascade::Cascade;
use aeon_crypto::entropic::EntropicCipher;
use aeon_crypto::otp::OneTimePad;
use aeon_crypto::sig::{MerkleSigner, WotsSigner};
use aeon_crypto::suite::SuiteId;
use aeon_crypto::{ChaChaDrbg, CryptoRng, Sha256};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn chacha_aead_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                             aad in prop::collection::vec(any::<u8>(), 0..64),
                             pt in prop::collection::vec(any::<u8>(), 0..512)) {
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &aad, &pt);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn aes_aead_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                          pt in prop::collection::vec(any::<u8>(), 0..512)) {
        let aead = Aes256CtrHmac::new(&key);
        let sealed = aead.seal(&nonce, b"aad", &pt);
        prop_assert_eq!(aead.open(&nonce, b"aad", &sealed).unwrap(), pt);
    }

    #[test]
    fn aead_bitflip_rejected(key in any::<[u8; 32]>(), pt in prop::collection::vec(any::<u8>(), 1..128),
                             flip_byte in 0usize..1000, flip_bit in 0u8..8) {
        let aead = ChaCha20Poly1305::new(&key);
        let nonce = [0u8; 12];
        let mut sealed = aead.seal(&nonce, b"", &pt);
        let idx = flip_byte % sealed.len();
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(aead.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn cascade_roundtrip(master in any::<[u8; 32]>(), ctx in prop::collection::vec(any::<u8>(), 0..32),
                         pt in prop::collection::vec(any::<u8>(), 0..256)) {
        let c = Cascade::new(&[SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305], &master).unwrap();
        let ct = c.encrypt(&ctx, &pt);
        prop_assert_eq!(c.decrypt(&ctx, &ct).unwrap(), pt);
    }

    #[test]
    fn otp_roundtrip_and_accounting(key in prop::collection::vec(any::<u8>(), 1..256),
                                    msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..8)) {
        let mut pad = OneTimePad::new(key.clone());
        let mut consumed = 0usize;
        for msg in &msgs {
            match pad.encrypt(msg) {
                Ok((ct, off)) => {
                    prop_assert_eq!(off, consumed);
                    consumed += msg.len();
                    prop_assert_eq!(&pad.decrypt(&ct, off).unwrap(), msg);
                }
                Err(_) => {
                    prop_assert!(consumed + msg.len() > key.len());
                }
            }
        }
    }

    #[test]
    fn entropic_roundtrip(key in any::<[u8; 16]>(), seed in any::<u64>(),
                          pt in prop::collection::vec(any::<u8>(), 0..256)) {
        let cipher = EntropicCipher::new(key);
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let ct = cipher.encrypt(&mut rng, &pt);
        prop_assert_eq!(cipher.decrypt(&ct), pt);
    }

    #[test]
    fn wots_verifies_only_signed_message(seed in any::<u64>(),
                                         m1 in prop::collection::vec(any::<u8>(), 0..64),
                                         m2 in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let (mut sk, pk) = WotsSigner::generate(&mut rng);
        let sig = sk.sign(&m1).unwrap();
        prop_assert!(pk.verify(&m1, &sig));
        if m1 != m2 {
            prop_assert!(!pk.verify(&m2, &sig));
        }
    }

    #[test]
    fn drbg_split_invariance(seed in any::<u64>(), splits in prop::collection::vec(1usize..64, 1..6)) {
        let total: usize = splits.iter().sum();
        let mut a = ChaChaDrbg::from_u64_seed(seed);
        let mut whole = vec![0u8; total];
        a.fill_bytes(&mut whole);
        let mut b = ChaChaDrbg::from_u64_seed(seed);
        let mut parts = Vec::new();
        for s in &splits {
            let mut buf = vec![0u8; *s];
            b.fill_bytes(&mut buf);
            parts.extend_from_slice(&buf);
        }
        prop_assert_eq!(whole, parts);
    }
}

#[test]
fn merkle_exhaustion_is_exact() {
    let mut rng = ChaChaDrbg::from_u64_seed(77);
    for height in 0..4usize {
        let mut signer = MerkleSigner::generate(&mut rng, height);
        let pk = signer.public_key();
        for i in 0..(1usize << height) {
            let msg = format!("m{i}");
            let sig = signer.sign(msg.as_bytes()).unwrap();
            assert!(pk.verify(msg.as_bytes(), &sig));
        }
        assert!(signer.sign(b"overflow").is_err());
    }
}

//! Property-based tests for big-integer and modular arithmetic.

use aeon_num::{MontCtx, U256};
use proptest::prelude::*;

fn u256() -> impl Strategy<Value = U256> {
    prop::array::uniform32(any::<u8>()).prop_map(|b| U256::from_be_bytes(&b))
}

proptest! {
    #[test]
    fn add_commutes(a in u256(), b in u256()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn add_sub_inverse(a in u256(), b in u256()) {
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn cmp_consistent_with_sub(a in u256(), b in u256()) {
        let (_, borrow) = a.overflowing_sub(&b);
        prop_assert_eq!(borrow, a < b);
    }

    #[test]
    fn shl_shr_roundtrip(a in u256()) {
        let (s, carry) = a.shl1();
        if !carry {
            prop_assert_eq!(s.shr1(), a);
        }
    }

    #[test]
    fn bytes_roundtrip(a in u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn rem_bounded(a in u256(), m in 1u64..u64::MAX) {
        let m = U256::from_u64(m);
        let r = a.rem(&m);
        prop_assert!(r < m);
    }

    #[test]
    fn rem_is_congruent_small(a in any::<u64>(), m in 2u64..1_000_000) {
        let r = U256::from_u64(a).rem(&U256::from_u64(m));
        prop_assert_eq!(r, U256::from_u64(a % m));
    }

    /// Montgomery mul agrees with u128 arithmetic for word-size moduli.
    #[test]
    fn mont_mul_matches_u128(a in any::<u64>(), b in any::<u64>(), m in (1u64 << 32..u64::MAX / 2).prop_map(|v| v | 1)) {
        let ctx = MontCtx::new(U256::from_u64(m));
        let got = ctx.mul(&U256::from_u64(a % m), &U256::from_u64(b % m));
        let expect = ((a % m) as u128 * (b % m) as u128 % m as u128) as u64;
        prop_assert_eq!(got, U256::from_u64(expect));
    }

    /// pow is a homomorphism: x^(e1+e2) = x^e1 · x^e2 (mod m).
    #[test]
    fn pow_homomorphism(x in any::<u64>(), e1 in 0u64..500, e2 in 0u64..500) {
        let m = 1_000_003u64; // prime
        let ctx = MontCtx::new(U256::from_u64(m));
        let x = U256::from_u64(x % m);
        let lhs = ctx.pow(&x, &U256::from_u64(e1 + e2));
        let rhs = ctx.mul(&ctx.pow(&x, &U256::from_u64(e1)), &ctx.pow(&x, &U256::from_u64(e2)));
        prop_assert_eq!(lhs, rhs);
    }

    /// Wide multiplication then reduction agrees with modular multiplication.
    #[test]
    fn wide_mul_reduce_consistent(a in u256(), b in u256(), m in (1u64 << 20..u64::MAX).prop_map(|v| v | 1)) {
        let modulus = U256::from_u64(m);
        let ctx = MontCtx::new(modulus);
        let mut wide = [0u64; 8];
        a.mul_wide_into(&b, &mut wide);
        let via_wide = aeon_num::reduce_wide(&wide, &modulus);
        let via_mont = ctx.mul(&a.rem(&modulus), &b.rem(&modulus));
        prop_assert_eq!(via_wide, via_mont);
    }
}

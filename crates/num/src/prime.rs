//! Miller–Rabin probabilistic primality testing.

use crate::mont::MontCtx;
use crate::uint::Uint;

/// Outcome of a Miller–Rabin test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primality {
    /// Definitely composite (a witness was found).
    Composite,
    /// Probably prime: no witness among the tested bases; error probability
    /// at most 4^-rounds for random bases.
    ProbablyPrime,
}

/// Runs Miller–Rabin with the supplied bases.
///
/// The caller chooses bases: fixed small bases give a deterministic test
/// for moduli below well-known bounds (2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
/// 31, 37 covers everything below 3.3 · 10²⁴); random bases give the usual
/// probabilistic guarantee for big numbers.
///
/// # Examples
///
/// ```
/// use aeon_num::{prime::{miller_rabin, Primality}, U256};
///
/// let p = U256::from_u64(1_000_003);
/// assert_eq!(miller_rabin(&p, &[2, 3, 5, 7]), Primality::ProbablyPrime);
/// let c = U256::from_u64(1_000_001); // 101 × 9901
/// assert_eq!(miller_rabin(&c, &[2, 3]), Primality::Composite);
/// ```
pub fn miller_rabin<const L: usize>(n: &Uint<L>, bases: &[u64]) -> Primality {
    // Small cases.
    if n.bit_length() <= 6 {
        let v = n.limbs()[0];
        if v < 2 {
            return Primality::Composite;
        }
        for d in 2..v {
            if d * d > v {
                break;
            }
            if v.is_multiple_of(d) {
                return Primality::Composite;
            }
        }
        return Primality::ProbablyPrime;
    }
    if !n.is_odd() {
        return Primality::Composite;
    }

    // n - 1 = 2^s · d with d odd.
    let n_minus_1 = n.wrapping_sub(&Uint::one());
    let mut d = n_minus_1;
    let mut s = 0u32;
    while !d.is_odd() {
        d = d.shr1();
        s += 1;
    }

    let ctx = MontCtx::new(*n);
    'bases: for &b in bases {
        let base = Uint::<L>::from_u64(b).rem(n);
        if base.is_zero() || base == Uint::one() {
            continue;
        }
        let mut x = ctx.pow(&base, &d);
        if x == Uint::one() || x == n_minus_1 {
            continue;
        }
        for _ in 1..s {
            x = ctx.mul(&x, &x);
            if x == n_minus_1 {
                continue 'bases;
            }
            if x == Uint::one() {
                return Primality::Composite;
            }
        }
        return Primality::Composite;
    }
    Primality::ProbablyPrime
}

/// Standard deterministic base set for 64-bit-range inputs and a strong
/// probabilistic set for larger ones.
pub const STANDARD_BASES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uint::{U2048, U256};

    #[test]
    fn small_primes_and_composites() {
        let primes = [2u64, 3, 5, 7, 11, 13, 31, 61];
        for p in primes {
            assert_eq!(
                miller_rabin(&U256::from_u64(p), &STANDARD_BASES),
                Primality::ProbablyPrime,
                "{p}"
            );
        }
        let composites = [1u64, 4, 6, 9, 15, 21, 25, 33, 49];
        for c in composites {
            assert_eq!(
                miller_rabin(&U256::from_u64(c), &STANDARD_BASES),
                Primality::Composite,
                "{c}"
            );
        }
    }

    #[test]
    fn carmichael_numbers_detected() {
        // 561, 1105, 1729 fool the Fermat test but not Miller–Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert_eq!(
                miller_rabin(&U256::from_u64(c), &STANDARD_BASES),
                Primality::Composite,
                "{c}"
            );
        }
    }

    #[test]
    fn mersenne_127() {
        let p = U256::from_hex("7fffffffffffffffffffffffffffffff"); // 2^127-1
        assert_eq!(
            miller_rabin(&p, &[2, 3, 5, 7, 11]),
            Primality::ProbablyPrime
        );
        let c = p.wrapping_sub(&U256::from_u64(2));
        assert_eq!(miller_rabin(&c, &[2, 3, 5, 7, 11]), Primality::Composite);
    }

    #[test]
    #[ignore = "slow in debug builds: two 2048-bit Miller-Rabin runs"]
    fn rfc3526_prime_and_subgroup_order_are_prime() {
        let g = crate::ModpGroup::rfc3526_2048();
        let p: U2048 = *g.modulus();
        assert_eq!(miller_rabin(&p, &[2, 3]), Primality::ProbablyPrime);
        let q = *g.subgroup_order();
        assert_eq!(miller_rabin(&q, &[2, 3]), Primality::ProbablyPrime);
    }
}

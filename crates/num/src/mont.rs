//! Montgomery-domain modular multiplication and exponentiation.

use crate::uint::{reduce_wide, Uint};

/// A Montgomery multiplication context for an odd modulus `n`.
///
/// Montgomery's trick replaces the expensive division in modular
/// multiplication with shifts by the word size: numbers are kept in the
/// "Montgomery domain" `aR mod n` (with `R = 2^(64·L)`), where the CIOS
/// (Coarsely Integrated Operand Scanning) product interleaves reduction
/// with multiplication. One 2048-bit modexp then costs ~2·4096 limb-level
/// multiplications instead of thousands of long divisions.
///
/// # Examples
///
/// ```
/// use aeon_num::{MontCtx, U256};
///
/// let modulus = U256::from_u64(1_000_003); // odd
/// let ctx = MontCtx::new(modulus);
/// let base = U256::from_u64(12345);
/// // 12345^1000002 mod 1000003 == 1 (Fermat; 1000003 is prime)
/// let exp = U256::from_u64(1_000_002);
/// assert_eq!(ctx.pow(&base, &exp), U256::one());
/// ```
#[derive(Debug, Clone)]
pub struct MontCtx<const L: usize> {
    n: Uint<L>,
    /// -n^{-1} mod 2^64
    n0: u64,
    /// R mod n — the Montgomery representation of 1.
    one_mont: Uint<L>,
    /// R² mod n — used to convert into the Montgomery domain.
    r2: Uint<L>,
}

impl<const L: usize> MontCtx<L> {
    /// Creates a context for the given odd modulus.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is even or zero.
    pub fn new(n: Uint<L>) -> Self {
        assert!(n.is_odd(), "Montgomery modulus must be odd");
        // n0 = -n^{-1} mod 2^64 by Newton–Hensel lifting.
        let n_low = n.limbs()[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n_low.wrapping_mul(inv)));
        }
        let n0 = inv.wrapping_neg();

        // R mod n: start from 1 and double 64·L times modulo n.
        let mut one_mont = Uint::<L>::one().rem(&n);
        for _ in 0..Uint::<L>::BITS {
            one_mont = one_mont.add_mod(&one_mont, &n);
        }
        // R² mod n: double R mod n another 64·L times.
        let mut r2 = one_mont;
        for _ in 0..Uint::<L>::BITS {
            r2 = r2.add_mod(&r2, &n);
        }
        MontCtx {
            n,
            n0,
            one_mont,
            r2,
        }
    }

    /// Returns the modulus.
    pub fn modulus(&self) -> &Uint<L> {
        &self.n
    }

    /// CIOS Montgomery product: returns `a · b · R^{-1} mod n` for inputs
    /// in the Montgomery domain.
    pub fn mont_mul(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let al = a.limbs();
        let bl = b.limbs();
        let nl = self.n.limbs();
        // t has L + 2 limbs.
        let mut t = vec![0u64; L + 2];
        for &a_limb in al.iter() {
            // t += a_limb * b
            let ai = a_limb as u128;
            let mut carry = 0u128;
            for j in 0..L {
                let s = (t[j] as u128) + ai * (bl[j] as u128) + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = (t[L] as u128) + carry;
            t[L] = s as u64;
            t[L + 1] = (s >> 64) as u64;

            // m = t[0] * n0 mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0) as u128;
            let s = (t[0] as u128) + m * (nl[0] as u128);
            let mut carry = s >> 64;
            for j in 1..L {
                let s = (t[j] as u128) + m * (nl[j] as u128) + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = (t[L] as u128) + carry;
            t[L - 1] = s as u64;
            t[L] = t[L + 1].wrapping_add((s >> 64) as u64);
            t[L + 1] = 0;
        }
        let mut out = [0u64; L];
        out.copy_from_slice(&t[..L]);
        let mut result = Uint::from_limbs(out);
        if t[L] != 0 || result >= self.n {
            result = result.wrapping_sub(&self.n);
        }
        result
    }

    /// Converts a value (`< n`) into the Montgomery domain.
    pub fn to_mont(&self, a: &Uint<L>) -> Uint<L> {
        self.mont_mul(a, &self.r2)
    }

    /// Converts a value out of the Montgomery domain.
    pub fn from_mont(&self, a: &Uint<L>) -> Uint<L> {
        self.mont_mul(a, &Uint::one())
    }

    /// Modular multiplication of plain (non-Montgomery) values.
    pub fn mul(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` by square-and-multiply over
    /// the Montgomery domain.
    pub fn pow(&self, base: &Uint<L>, exp: &Uint<L>) -> Uint<L> {
        self.pow_bytes(base, &exp.to_be_bytes())
    }

    /// Modular exponentiation with a big-endian byte exponent, allowing
    /// exponents wider or narrower than the modulus width.
    pub fn pow_bytes(&self, base: &Uint<L>, exp_be: &[u8]) -> Uint<L> {
        let base = base.rem(&self.n);
        let base_m = self.to_mont(&base);
        let mut acc = self.one_mont;
        let mut started = false;
        for &byte in exp_be {
            if !started && byte == 0 {
                continue;
            }
            for bit in (0..8).rev() {
                if started {
                    acc = self.mont_mul(&acc, &acc);
                }
                if (byte >> bit) & 1 == 1 {
                    if started {
                        acc = self.mont_mul(&acc, &base_m);
                    } else {
                        acc = base_m;
                        started = true;
                    }
                }
            }
        }
        if !started {
            // exp == 0
            return Uint::one().rem(&self.n);
        }
        self.from_mont(&acc)
    }

    /// Reduces an arbitrary wide little-endian limb slice modulo `n`.
    pub fn reduce(&self, wide: &[u64]) -> Uint<L> {
        reduce_wide(wide, &self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uint::U256;

    fn ctx_small() -> MontCtx<4> {
        MontCtx::new(U256::from_u64(1_000_003))
    }

    #[test]
    fn mont_roundtrip() {
        let ctx = ctx_small();
        for v in [0u64, 1, 2, 999_999, 1_000_002] {
            let x = U256::from_u64(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x, "v = {v}");
        }
    }

    #[test]
    fn mul_matches_u128() {
        let ctx = ctx_small();
        let m = 1_000_003u128;
        for a in [2u64, 3, 65_537, 999_999] {
            for b in [5u64, 7, 123_456, 1_000_000] {
                let expect = ((a as u128 * b as u128) % m) as u64;
                let got = ctx.mul(&U256::from_u64(a), &U256::from_u64(b));
                assert_eq!(got, U256::from_u64(expect), "{a} * {b}");
            }
        }
    }

    #[test]
    fn pow_matches_naive() {
        let ctx = ctx_small();
        let m = 1_000_003u64;
        let naive = |b: u64, e: u64| -> u64 {
            let mut acc = 1u128;
            for _ in 0..e {
                acc = acc * b as u128 % m as u128;
            }
            acc as u64
        };
        for b in [2u64, 3, 10, 999] {
            for e in [0u64, 1, 2, 17, 100] {
                assert_eq!(
                    ctx.pow(&U256::from_u64(b), &U256::from_u64(e)),
                    U256::from_u64(naive(b, e)),
                    "{b}^{e}"
                );
            }
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let ctx = ctx_small();
        assert_eq!(ctx.pow(&U256::from_u64(12345), &U256::ZERO), U256::one());
    }

    #[test]
    fn fermat_little_theorem() {
        // 1_000_003 is prime: a^(p-1) = 1 mod p.
        let ctx = ctx_small();
        for a in [2u64, 3, 42, 999_999] {
            assert_eq!(
                ctx.pow(&U256::from_u64(a), &U256::from_u64(1_000_002)),
                U256::one()
            );
        }
    }

    #[test]
    fn pow_bytes_wide_exponent() {
        let ctx = ctx_small();
        // a^(p-1)^2... just check leading zeros in exponent bytes are
        // handled: 0x00 00 05 == 5.
        let got = ctx.pow_bytes(&U256::from_u64(2), &[0, 0, 5]);
        assert_eq!(got, U256::from_u64(32));
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_modulus_rejected() {
        let _ = MontCtx::new(U256::from_u64(100));
    }

    #[test]
    fn larger_modulus_consistency() {
        // 2^127 - 1 is a Mersenne prime; verify Fermat again at 128 bits.
        let p = U256::from_hex("7fffffffffffffffffffffffffffffff");
        let ctx = MontCtx::new(p);
        let pm1 = p.wrapping_sub(&U256::one());
        for a in [2u64, 3, 7, 1234567] {
            assert_eq!(ctx.pow(&U256::from_u64(a), &pm1), U256::one());
        }
    }
}

//! Const-generic fixed-width unsigned integers.

use core::cmp::Ordering;
use core::fmt;

/// A fixed-width unsigned integer with `L` little-endian 64-bit limbs.
///
/// `Uint<4>` is 256 bits, `Uint<32>` is 2048 bits. Arithmetic is
/// carry-exact and allocation-free; the wide operations needed by modular
/// reduction work on limb slices (see [`Uint::mul_wide_into`] and
/// [`reduce_wide`]).
///
/// # Examples
///
/// ```
/// use aeon_num::U256;
///
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(9);
/// let (sum, carry) = a.overflowing_add(&b);
/// assert_eq!(sum, U256::from_u64(16));
/// assert!(!carry);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Uint<const L: usize> {
    limbs: [u64; L],
}

/// 256-bit unsigned integer.
pub type U256 = Uint<4>;
/// 2048-bit unsigned integer.
pub type U2048 = Uint<32>;

impl<const L: usize> Uint<L> {
    /// The value zero.
    pub const ZERO: Self = Uint { limbs: [0; L] };

    /// The number of bits in the representation.
    pub const BITS: usize = 64 * L;

    /// Creates a value from a single `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; L];
        limbs[0] = v;
        Uint { limbs }
    }

    /// The value one.
    pub const fn one() -> Self {
        Self::from_u64(1)
    }

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; L]) -> Self {
        Uint { limbs }
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> &[u64; L] {
        &self.limbs
    }

    /// Parses a big-endian byte slice. Bytes beyond the capacity are
    /// rejected only if they are nonzero; shorter inputs are zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `L` limbs.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = [0u64; L];
        let mut limb = 0usize;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            if limb >= L {
                assert_eq!(b, 0, "value does not fit in Uint<{L}>");
                continue;
            }
            limbs[limb] |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                shift = 0;
                limb += 1;
            }
        }
        Uint { limbs }
    }

    /// Parses a big-endian hex string (whitespace and `_` ignored).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters or overflow.
    pub fn from_hex(s: &str) -> Self {
        let clean: Vec<u8> = s
            .bytes()
            .filter(|b| !b.is_ascii_whitespace() && *b != b'_')
            .map(|b| match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => panic!("invalid hex character {:?}", b as char),
            })
            .collect();
        let mut bytes = Vec::with_capacity(clean.len().div_ceil(2));
        let mut iter = clean.iter();
        if clean.len() % 2 == 1 {
            bytes.push(*iter.next().unwrap());
        }
        while let (Some(hi), Some(lo)) = (iter.next(), iter.next()) {
            bytes.push(hi << 4 | lo);
        }
        Self::from_be_bytes(&bytes)
    }

    /// Serializes to big-endian bytes (`8 * L` bytes, zero-padded).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * L);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        if i >= Self::BITS {
            return false;
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the position of the highest set bit plus one (0 for zero).
    pub fn bit_length(&self) -> usize {
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if limb != 0 {
                return i * 64 + (64 - limb.leading_zeros() as usize);
            }
        }
        0
    }

    /// Adds with carry-out.
    pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; L];
        let mut carry = 0u64;
        for (o, (a, b)) in out.iter_mut().zip(self.limbs.iter().zip(&rhs.limbs)) {
            let (s1, c1) = a.overflowing_add(*b);
            let (s2, c2) = s1.overflowing_add(carry);
            *o = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (Uint { limbs: out }, carry != 0)
    }

    /// Subtracts with borrow-out.
    pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; L];
        let mut borrow = 0u64;
        for (o, (a, b)) in out.iter_mut().zip(self.limbs.iter().zip(&rhs.limbs)) {
            let (d1, b1) = a.overflowing_sub(*b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (Uint { limbs: out }, borrow != 0)
    }

    /// Wrapping addition (discards carry).
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction (discards borrow).
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Modular addition; `self` and `rhs` must already be `< modulus`.
    pub fn add_mod(&self, rhs: &Self, modulus: &Self) -> Self {
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || sum >= *modulus {
            sum.wrapping_sub(modulus)
        } else {
            sum
        }
    }

    /// Modular subtraction; `self` and `rhs` must already be `< modulus`.
    pub fn sub_mod(&self, rhs: &Self, modulus: &Self) -> Self {
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.wrapping_add(modulus)
        } else {
            diff
        }
    }

    /// Shifts left by one bit, returning the shifted-out bit.
    pub fn shl1(&self) -> (Self, bool) {
        let mut out = [0u64; L];
        let mut carry = 0u64;
        for (o, limb) in out.iter_mut().zip(&self.limbs) {
            *o = (limb << 1) | carry;
            carry = limb >> 63;
        }
        (Uint { limbs: out }, carry != 0)
    }

    /// Shifts right by one bit.
    pub fn shr1(&self) -> Self {
        let mut out = [0u64; L];
        let mut carry = 0u64;
        for i in (0..L).rev() {
            out[i] = (self.limbs[i] >> 1) | (carry << 63);
            carry = self.limbs[i] & 1;
        }
        Uint { limbs: out }
    }

    /// Schoolbook multiplication into a `2 * L`-limb little-endian output
    /// slice.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != 2 * L`.
    pub fn mul_wide_into(&self, rhs: &Self, out: &mut [u64]) {
        assert_eq!(out.len(), 2 * L, "wide product needs 2L limbs");
        out.fill(0);
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = (a as u128) * (b as u128) + (out[i + j] as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + L;
            while carry != 0 {
                let t = (out[k] as u128) + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
    }

    /// Reduces `self` modulo `modulus` (binary method).
    pub fn rem(&self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "division by zero");
        if self < modulus {
            return *self;
        }
        let mut r = Self::ZERO;
        for i in (0..self.bit_length()).rev() {
            let (shifted, overflow) = r.shl1();
            r = shifted;
            if self.bit(i) {
                r.limbs[0] |= 1;
            }
            if overflow || r >= *modulus {
                r = r.wrapping_sub(modulus);
            }
        }
        r
    }
}

/// Reduces a little-endian wide limb slice modulo `modulus`, returning the
/// remainder as a `Uint<L>`. Binary long division: O(bits · L) but only
/// used on cold paths (hash-to-group, Montgomery context setup).
pub fn reduce_wide<const L: usize>(wide: &[u64], modulus: &Uint<L>) -> Uint<L> {
    assert!(!modulus.is_zero(), "division by zero");
    // Find highest set bit of the wide value.
    let mut top = 0usize;
    for (i, &limb) in wide.iter().enumerate().rev() {
        if limb != 0 {
            top = i * 64 + (64 - limb.leading_zeros() as usize);
            break;
        }
    }
    let mut r = Uint::<L>::ZERO;
    for i in (0..top).rev() {
        let (shifted, overflow) = r.shl1();
        r = shifted;
        if (wide[i / 64] >> (i % 64)) & 1 == 1 {
            r = Uint::from_limbs({
                let mut l = *r.limbs();
                l[0] |= 1;
                l
            });
        }
        if overflow || r >= *modulus {
            r = r.wrapping_sub(modulus);
        }
    }
    r
}

impl<const L: usize> Default for Uint<L> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const L: usize> PartialOrd for Uint<L> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const L: usize> Ord for Uint<L> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..L).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<const L: usize> fmt::Debug for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint<{L}>(0x")?;
        let mut started = false;
        for limb in self.limbs.iter().rev() {
            if started {
                write!(f, "{limb:016x}")?;
            } else if *limb != 0 {
                write!(f, "{limb:x}")?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        write!(f, ")")
    }
}

impl<const L: usize> fmt::Display for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const L: usize> From<u64> for Uint<L> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffff");
        let b = U256::from_u64(1);
        let (sum, carry) = a.overflowing_add(&b);
        assert!(!carry);
        assert_eq!(sum, U256::from_hex("0100000000000000000000000000000000"));
        assert_eq!(sum.wrapping_sub(&b), a);
    }

    #[test]
    fn overflow_detection() {
        let max = U256::from_be_bytes(&[0xFF; 32]);
        let (_, carry) = max.overflowing_add(&U256::one());
        assert!(carry);
        let (_, borrow) = U256::ZERO.overflowing_sub(&U256::one());
        assert!(borrow);
    }

    #[test]
    fn ordering() {
        let a = U256::from_u64(5);
        let b = U256::from_hex("10000000000000000"); // 2^64
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn hex_and_bytes_roundtrip() {
        let v = U256::from_hex("00ff_ee01  23456789 abcdefAB");
        let bytes = v.to_be_bytes();
        assert_eq!(U256::from_be_bytes(&bytes), v);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_bytes_panic() {
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&[0u8; 32]);
        let _ = U256::from_be_bytes(&bytes);
    }

    #[test]
    fn bit_length_and_bits() {
        assert_eq!(U256::ZERO.bit_length(), 0);
        assert_eq!(U256::one().bit_length(), 1);
        assert_eq!(U256::from_u64(0x8000).bit_length(), 16);
        let v = U256::from_hex("80000000000000000000000000000000");
        assert_eq!(v.bit_length(), 128);
        assert!(v.bit(127));
        assert!(!v.bit(126));
    }

    #[test]
    fn mul_wide_known() {
        let a = U256::from_u64(u64::MAX);
        let mut wide = [0u64; 8];
        a.mul_wide_into(&a, &mut wide);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(wide[0], 1);
        assert_eq!(wide[1], u64::MAX - 1);
        assert!(wide[2..].iter().all(|&l| l == 0));
    }

    #[test]
    fn rem_small_values() {
        let a = U256::from_u64(100);
        let m = U256::from_u64(7);
        assert_eq!(a.rem(&m), U256::from_u64(2));
        assert_eq!(U256::from_u64(6).rem(&m), U256::from_u64(6));
        assert_eq!(U256::from_u64(7).rem(&m), U256::ZERO);
    }

    #[test]
    fn reduce_wide_matches_rem() {
        let a = U256::from_hex("123456789abcdef0fedcba9876543210");
        let m = U256::from_u64(1_000_003);
        let mut wide = [0u64; 8];
        a.mul_wide_into(&a, &mut wide);
        // Compare against iterated rem computed differently: reduce a first,
        // then square via mul_wide of the reduced value.
        let ar = a.rem(&m);
        let mut wide2 = [0u64; 8];
        ar.mul_wide_into(&ar, &mut wide2);
        assert_eq!(reduce_wide(&wide, &m), reduce_wide(&wide2, &m));
    }

    #[test]
    fn add_mod_sub_mod() {
        let m = U256::from_u64(101);
        let a = U256::from_u64(100);
        let b = U256::from_u64(5);
        assert_eq!(a.add_mod(&b, &m), U256::from_u64(4));
        assert_eq!(b.sub_mod(&a, &m), U256::from_u64(6));
    }

    #[test]
    fn shl_shr() {
        let v = U256::from_u64(0b1011);
        let (s, c) = v.shl1();
        assert!(!c);
        assert_eq!(s, U256::from_u64(0b10110));
        assert_eq!(s.shr1(), v);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", U256::ZERO), "Uint<4>(0x0)");
        assert_eq!(format!("{:?}", U256::from_u64(255)), "Uint<4>(0xff)");
    }
}

//! The RFC 3526 2048-bit MODP group and hash-to-group mapping.

use crate::mont::MontCtx;
use crate::uint::{reduce_wide, U2048};
use std::sync::Arc;

/// The RFC 3526 group-14 prime (2048 bits), a safe prime
/// `p = 2q + 1` with `q` prime.
const RFC3526_2048_HEX: &str = "
    FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1
    29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD
    EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245
    E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED
    EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D
    C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F
    83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D
    670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B
    E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9
    DE2BCBF6 95581718 3995497C EA956AE5 15D22618 98FA0510
    15728E5A 8AACAA68 FFFFFFFF FFFFFFFF";

/// An element of the MODP group, stored as its canonical residue mod `p`.
///
/// # Examples
///
/// ```
/// use aeon_num::ModpGroup;
///
/// let g = ModpGroup::rfc3526_2048();
/// let a = g.exp_generator(&[5]);
/// let b = g.exp(&a, &[2]);
/// assert_eq!(b, g.exp_generator(&[10]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupElement(pub(crate) U2048);

impl GroupElement {
    /// Deserializes an element from big-endian bytes (as produced by
    /// [`GroupElement::to_be_bytes`]). The caller is responsible for the
    /// value being a canonical residue.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        GroupElement(U2048::from_be_bytes(bytes))
    }

    /// Serializes the element to 256 big-endian bytes.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        self.0.to_be_bytes()
    }

    /// Returns the underlying residue.
    pub fn as_uint(&self) -> &U2048 {
        &self.0
    }
}

/// A safe-prime discrete-log group: arithmetic modulo the RFC 3526
/// 2048-bit prime, with the generator squared so that all exponentiations
/// land in the prime-order-`q` subgroup of quadratic residues.
///
/// The group is cheap to clone (`Arc` inside) and is shared by Pedersen
/// commitments, Feldman/Pedersen VSS, and the Diffie–Hellman channel
/// handshake.
#[derive(Debug, Clone)]
pub struct ModpGroup {
    inner: Arc<GroupInner>,
}

#[derive(Debug)]
struct GroupInner {
    ctx: MontCtx<32>,
    /// Generator of the order-q subgroup: 4 = 2² (2 generates Z_p*;
    /// its square generates the quadratic residues).
    g: U2048,
    /// Subgroup order q = (p - 1) / 2.
    q: U2048,
}

impl ModpGroup {
    /// Returns the RFC 3526 group-14 (2048-bit) instance.
    pub fn rfc3526_2048() -> Self {
        let p = U2048::from_hex(RFC3526_2048_HEX);
        let q = p.shr1(); // (p-1)/2 for odd p: shr1 of p gives (p-1)/2
        let ctx = MontCtx::new(p);
        ModpGroup {
            inner: Arc::new(GroupInner {
                ctx,
                g: U2048::from_u64(4),
                q,
            }),
        }
    }

    /// Returns the group modulus `p`.
    pub fn modulus(&self) -> &U2048 {
        self.inner.ctx.modulus()
    }

    /// Returns the subgroup order `q = (p - 1) / 2`.
    pub fn subgroup_order(&self) -> &U2048 {
        &self.inner.q
    }

    /// Returns the subgroup generator (`4`).
    pub fn generator(&self) -> GroupElement {
        GroupElement(self.inner.g)
    }

    /// Raises the generator to a big-endian byte exponent.
    pub fn exp_generator(&self, exp_be: &[u8]) -> GroupElement {
        GroupElement(self.inner.ctx.pow_bytes(&self.inner.g, exp_be))
    }

    /// Raises an arbitrary element to a big-endian byte exponent.
    pub fn exp(&self, base: &GroupElement, exp_be: &[u8]) -> GroupElement {
        GroupElement(self.inner.ctx.pow_bytes(&base.0, exp_be))
    }

    /// Multiplies two group elements.
    pub fn mul(&self, a: &GroupElement, b: &GroupElement) -> GroupElement {
        GroupElement(self.inner.ctx.mul(&a.0, &b.0))
    }

    /// Inverts a group element via Fermat: `a^(p-2) mod p`.
    pub fn invert(&self, a: &GroupElement) -> GroupElement {
        let p_minus_2 = self.modulus().wrapping_sub(&U2048::from_u64(2));
        GroupElement(self.inner.ctx.pow(&a.0, &p_minus_2))
    }

    /// Deterministically maps arbitrary bytes into the order-`q` subgroup
    /// by interpreting them as an integer and squaring modulo `p`. Squaring
    /// guarantees a quadratic residue; with overwhelming probability the
    /// result is neither 0 nor 1.
    ///
    /// Used to derive the second Pedersen base `h` with no known discrete
    /// log relative to `g` ("nothing up my sleeve").
    pub fn hash_to_group(&self, bytes: &[u8]) -> GroupElement {
        // Fold input into a 2048-bit value (repeat/truncate), reduce, square.
        let mut buf = [0u8; 256];
        for (i, &b) in bytes.iter().enumerate().take(4096) {
            buf[i % 256] ^= b.rotate_left((i / 256) as u32);
        }
        let x = U2048::from_be_bytes(&buf).rem(self.modulus());
        let mut wide = vec![0u64; 64];
        x.mul_wide_into(&x, &mut wide);
        let sq = reduce_wide(&wide, self.modulus());
        GroupElement(sq)
    }

    /// Reduces big-endian bytes modulo the subgroup order `q` — used to map
    /// digests and random scalars into exponent range.
    pub fn scalar_from_bytes(&self, bytes: &[u8]) -> U2048 {
        // Interpret up to 256 bytes, fold the rest.
        let mut buf = [0u8; 256];
        for (i, &b) in bytes.iter().enumerate() {
            buf[i % 256] ^= b.rotate_left((i / 256) as u32);
        }
        U2048::from_be_bytes(&buf).rem(&self.inner.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_in_subgroup() {
        let g = ModpGroup::rfc3526_2048();
        // g^q == 1 for an order-q element.
        let gq = g.exp_generator(&g.subgroup_order().to_be_bytes());
        assert_eq!(gq.0, U2048::one());
    }

    #[test]
    fn exponent_addition_law() {
        let g = ModpGroup::rfc3526_2048();
        let a = g.exp_generator(&[0x12, 0x34]);
        let b = g.exp_generator(&[0x01, 0x00]);
        let prod = g.mul(&a, &b);
        assert_eq!(prod, g.exp_generator(&[0x13, 0x34]));
    }

    #[test]
    fn inversion() {
        let g = ModpGroup::rfc3526_2048();
        let a = g.exp_generator(&[7, 7, 7]);
        let inv = g.invert(&a);
        let prod = g.mul(&a, &inv);
        assert_eq!(prod.0, U2048::one());
    }

    #[test]
    fn hash_to_group_is_residue_and_deterministic() {
        let g = ModpGroup::rfc3526_2048();
        let h1 = g.hash_to_group(b"aeon-pedersen-h");
        let h2 = g.hash_to_group(b"aeon-pedersen-h");
        assert_eq!(h1, h2);
        assert_ne!(h1.0, U2048::ZERO);
        assert_ne!(h1.0, U2048::one());
        // Element of order q: h^q == 1.
        let hq = g.exp(&h1, &g.subgroup_order().to_be_bytes());
        assert_eq!(hq.0, U2048::one());
    }

    #[test]
    fn scalar_from_bytes_below_q() {
        let g = ModpGroup::rfc3526_2048();
        let s = g.scalar_from_bytes(&[0xFF; 300]);
        assert!(s < *g.subgroup_order());
    }

    #[test]
    fn p_is_congruent_3_mod_4() {
        // Safe prime p = 2q+1 with q odd means p ≡ 3 (mod 4).
        let g = ModpGroup::rfc3526_2048();
        assert_eq!(g.modulus().limbs()[0] & 3, 3);
    }
}

//! Fixed-width big-integer arithmetic and a discrete-log group for
//! information-theoretically *hiding* commitments.
//!
//! Long-term integrity protocols (LINCOS-style timestamping, Pedersen
//! verifiable secret sharing) need commitments that remain hiding even
//! against a computationally unbounded future adversary. Pedersen
//! commitments over a prime-order group have exactly that property: the
//! commitment `g^m · h^r` is a uniformly random group element for uniform
//! `r`, so confidentiality never expires; only the *binding* property is
//! computational.
//!
//! This crate supplies the arithmetic substrate from scratch:
//!
//! * [`Uint`] — const-generic fixed-width unsigned integers (little-endian
//!   64-bit limbs) with carry-exact addition/subtraction, comparison,
//!   shifting, and wide multiplication.
//! * [`MontCtx`] — Montgomery-domain modular multiplication and
//!   exponentiation (CIOS), the workhorse for 2048-bit modexp.
//! * [`ModpGroup`] — the RFC 3526 2048-bit MODP group (a safe-prime group);
//!   exponentiations land in the prime-order-`q` subgroup of quadratic
//!   residues.
//! * [`pedersen`] — Pedersen commitments `g^m h^r mod p` with
//!   information-theoretic hiding.
//! * [`prime`] — Miller–Rabin primality testing used to validate the group
//!   constants and to test candidate moduli.
//!
//! # Examples
//!
//! ```
//! use aeon_num::{ModpGroup, pedersen::Committer};
//!
//! let group = ModpGroup::rfc3526_2048();
//! let committer = Committer::new(group);
//! let (commitment, opening) = committer.commit(b"message digest", &[7u8; 32]);
//! assert!(committer.verify(&commitment, b"message digest", &opening));
//! assert!(!committer.verify(&commitment, b"another digest", &opening));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod modp;
mod mont;
pub mod pedersen;
pub mod prime;
mod uint;

pub use modp::{GroupElement, ModpGroup};
pub use mont::MontCtx;
pub use uint::{reduce_wide, Uint, U2048, U256};

//! Pedersen commitments: information-theoretically hiding, computationally
//! binding.
//!
//! A Pedersen commitment to message scalar `m` with blinding scalar `r` is
//! `C = g^m · h^r mod p`, where the discrete log of `h` base `g` is
//! unknown. Because `h^r` is uniform in the subgroup for uniform `r`, the
//! commitment statistically reveals *nothing* about `m` — the hiding
//! property survives any amount of future cryptanalysis, which is exactly
//! the property long-term archival timestamping needs (LINCOS swaps hashes
//! for Pedersen commitments for this reason). Binding, by contrast, is
//! only computational: an adversary that can compute `log_g h` can equivocate.

use crate::modp::{GroupElement, ModpGroup};
use crate::uint::U2048;

/// The opening (blinding scalar) of a Pedersen commitment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opening {
    /// The blinding scalar `r` (big-endian bytes, already reduced mod `q`).
    pub blinding: Vec<u8>,
}

/// A Pedersen commitment `g^m · h^r`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Commitment(pub GroupElement);

impl Commitment {
    /// Serializes the commitment to bytes.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        self.0.to_be_bytes()
    }
}

/// A committer bound to a group and a pair of bases `(g, h)` with no known
/// discrete-log relation.
///
/// # Examples
///
/// ```
/// use aeon_num::{pedersen::Committer, ModpGroup};
///
/// let committer = Committer::new(ModpGroup::rfc3526_2048());
/// let (c, opening) = committer.commit(b"archive manifest digest", &[42u8; 32]);
/// assert!(committer.verify(&c, b"archive manifest digest", &opening));
/// ```
#[derive(Debug, Clone)]
pub struct Committer {
    group: ModpGroup,
    h: GroupElement,
}

impl Committer {
    /// Creates a committer with the standard "nothing up my sleeve" second
    /// base `h = hash_to_group("aeon-pedersen-h-v1")`.
    pub fn new(group: ModpGroup) -> Self {
        let h = group.hash_to_group(b"aeon-pedersen-h-v1");
        Committer { group, h }
    }

    /// Creates a committer with an explicit second base (for protocol
    /// interop tests).
    pub fn with_base(group: ModpGroup, h: GroupElement) -> Self {
        Committer { group, h }
    }

    /// Returns the group.
    pub fn group(&self) -> &ModpGroup {
        &self.group
    }

    /// Returns the second base `h`.
    pub fn h(&self) -> &GroupElement {
        &self.h
    }

    /// Commits to a message with the given blinding randomness.
    ///
    /// The message and blinding bytes are mapped to scalars mod `q`. The
    /// caller supplies the randomness so that the crate stays RNG-agnostic;
    /// pass at least 32 uniformly random bytes for full hiding.
    pub fn commit(&self, message: &[u8], blinding: &[u8]) -> (Commitment, Opening) {
        let m = self.group.scalar_from_bytes(message);
        let r = self.group.scalar_from_bytes(blinding);
        let c = self.commit_scalars(&m, &r);
        (
            c,
            Opening {
                blinding: r.to_be_bytes(),
            },
        )
    }

    /// Commits to already-reduced scalars.
    pub fn commit_scalars(&self, m: &U2048, r: &U2048) -> Commitment {
        let gm = self.group.exp_generator(&m.to_be_bytes());
        let hr = self.group.exp(&self.h, &r.to_be_bytes());
        Commitment(self.group.mul(&gm, &hr))
    }

    /// Verifies that `commitment` opens to `message` under `opening`.
    pub fn verify(&self, commitment: &Commitment, message: &[u8], opening: &Opening) -> bool {
        let m = self.group.scalar_from_bytes(message);
        let r = U2048::from_be_bytes(&opening.blinding);
        self.commit_scalars(&m, &r) == *commitment
    }

    /// Homomorphically adds two commitments:
    /// `commit(m1, r1) · commit(m2, r2) = commit(m1 + m2, r1 + r2)`.
    ///
    /// This additive homomorphism is what makes Pedersen commitments
    /// compose with linear secret sharing (Pedersen VSS): commitments to
    /// polynomial coefficients let every shareholder check its share
    /// without learning the secret.
    pub fn add(&self, a: &Commitment, b: &Commitment) -> Commitment {
        Commitment(self.group.mul(&a.0, &b.0))
    }

    /// Adds two openings (scalars mod `q`).
    pub fn add_openings(&self, a: &Opening, b: &Opening) -> Opening {
        let ra = U2048::from_be_bytes(&a.blinding);
        let rb = U2048::from_be_bytes(&b.blinding);
        let sum = ra.add_mod(&rb, self.group.subgroup_order());
        Opening {
            blinding: sum.to_be_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committer() -> Committer {
        Committer::new(ModpGroup::rfc3526_2048())
    }

    #[test]
    fn commit_verify_roundtrip() {
        let c = committer();
        let (com, open) = c.commit(b"hello archive", &[9u8; 32]);
        assert!(c.verify(&com, b"hello archive", &open));
    }

    #[test]
    fn wrong_message_rejected() {
        let c = committer();
        let (com, open) = c.commit(b"msg-a", &[1u8; 32]);
        assert!(!c.verify(&com, b"msg-b", &open));
    }

    #[test]
    fn wrong_blinding_rejected() {
        let c = committer();
        let (com, _) = c.commit(b"msg", &[1u8; 32]);
        let bad = Opening {
            blinding: U2048::from_u64(99).to_be_bytes(),
        };
        assert!(!c.verify(&com, b"msg", &bad));
    }

    #[test]
    fn hiding_different_blinding_different_commitment() {
        let c = committer();
        let (c1, _) = c.commit(b"same message", &[1u8; 32]);
        let (c2, _) = c.commit(b"same message", &[2u8; 32]);
        assert_ne!(c1, c2, "distinct blinding must randomize the commitment");
    }

    #[test]
    fn additive_homomorphism() {
        let c = committer();
        let g = c.group().clone();
        let m1 = g.scalar_from_bytes(&[3]);
        let m2 = g.scalar_from_bytes(&[5]);
        let r1 = g.scalar_from_bytes(&[100]);
        let r2 = g.scalar_from_bytes(&[200]);
        let c1 = c.commit_scalars(&m1, &r1);
        let c2 = c.commit_scalars(&m2, &r2);
        let sum_c = c.add(&c1, &c2);
        let m_sum = m1.add_mod(&m2, g.subgroup_order());
        let r_sum = r1.add_mod(&r2, g.subgroup_order());
        assert_eq!(sum_c, c.commit_scalars(&m_sum, &r_sum));
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let c = committer();
        let (c1, o1) = c.commit(b"m", &[7u8; 32]);
        let (c2, o2) = c.commit(b"m", &[7u8; 32]);
        assert_eq!(c1, c2);
        assert_eq!(o1, o2);
    }
}

//! # aeon — secure long-term archival storage toolkit
//!
//! `aeon` is a reproduction-scale implementation of the design space mapped
//! out by *“Secure Archival is Hard... Really Hard”* (HotStorage ’24): a
//! crypto-agile archival storage library covering every data encoding,
//! long-term-security protocol, and threat model the paper surveys.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`gf`] — finite fields GF(2^8)/GF(2^16), polynomials, matrices.
//! * [`num`] — fixed-width big integers and the MODP-2048 discrete-log group.
//! * [`crypto`] — from-scratch primitives: hashes, AEADs, one-time pad,
//!   hash-based signatures, Pedersen commitments, cascade ciphers, and the
//!   cipher-agility registry.
//! * [`erasure`] — systematic Reed–Solomon coding and replication.
//! * [`secretshare`] — Shamir, packed, verifiable, proactive,
//!   leakage-resilient secret sharing.
//! * [`integrity`] — Merkle trees, renewable timestamp chains, simulated
//!   timestamp authorities and ledgers.
//! * [`channel`] — computational (DH+AEAD), QKD-simulated, and bounded-
//!   storage-model channels.
//! * [`store`] — simulated geo-dispersed storage nodes, media models,
//!   maintenance-campaign I/O simulation.
//! * [`adversary`] — mobile adversaries, harvest-now-decrypt-later,
//!   cryptanalytic break schedules, leakage attacks, security evaluation.
//! * [`cas`] — content-addressed storage: a deterministic content-defined
//!   chunker, refcounted SHA-256 block store, bounded dedup index, and
//!   Merkle block trees whose interior nodes are themselves blocks.
//! * [`core`] — the [`Archive`](aeon_core::Archive) itself: policy-driven
//!   ingest/retrieve/verify/refresh with pluggable encoding policies.
//! * [`serve`] — a deterministic multi-tenant request engine on the
//!   virtual clock: seeded workloads, admission control, fair queueing,
//!   and per-tenant latency distributions, with §3.2 maintenance
//!   campaigns interleaved as background work.
//!
//! # Quickstart
//!
//! ```
//! use aeon::core::{Archive, ArchiveConfig, PolicyKind};
//!
//! let mut archive = Archive::in_memory(ArchiveConfig::new(PolicyKind::Shamir {
//!     threshold: 3,
//!     shares: 5,
//! }))?;
//! let id = archive.ingest(b"the long-term secret", "doc-1")?;
//! let data = archive.retrieve(&id)?;
//! assert_eq!(data, b"the long-term secret");
//! # Ok::<(), aeon::core::ArchiveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aeon_adversary as adversary;
pub use aeon_cas as cas;
pub use aeon_channel as channel;
pub use aeon_core as core;
pub use aeon_crypto as crypto;
pub use aeon_erasure as erasure;
pub use aeon_gf as gf;
pub use aeon_integrity as integrity;
pub use aeon_num as num;
pub use aeon_secretshare as secretshare;
pub use aeon_serve as serve;
pub use aeon_store as store;
